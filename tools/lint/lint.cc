#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

namespace zombie::lint {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Rule registry.
// ---------------------------------------------------------------------------

// Reporting order.  Every rule is error severity by default: the tree is kept
// clean (exit 0) and CI blocks on any new finding; --severity can demote a
// rule while a cleanup is staged.
const std::vector<RuleInfo>& RuleTable() {
  static const std::vector<RuleInfo> kRules = {
      {"wall-clock", Severity::kError,
       "real clocks (time/system_clock/steady_clock/...) outside "
       "src/common/sim_clock.h break seeded determinism; simulated results "
       "must be a pure function of the seed"},
      {"libc-rand", Severity::kError,
       "rand()/srand()/random_device et al. are unseeded or globally seeded; "
       "use zombie::Rng with an explicit seed"},
      {"unseeded-mt19937", Severity::kError,
       "a default-constructed std::mt19937 has a fixed-but-implicit seed; "
       "thread an explicit seed through (prefer zombie::Rng)"},
      {"unordered-iter", Severity::kError,
       "iteration order of unordered containers is implementation-defined; "
       "feeding it into reports or RNG draws breaks byte-identical gates"},
      {"nodiscard-fallible", Severity::kError,
       "functions returning Status/Result<T> in src/ headers must be "
       "[[nodiscard]] so discarded failures fail the build"},
      {"include-selfcheck", Severity::kError,
       "every header under src/ must appear in tests/include_selfcheck.cc "
       "(also enforced at configure time by cmake/include_selfcheck.cmake)"},
      {"scenario-registration", Severity::kError,
       "ZOMBIE_REGISTER_SCENARIO entries in src/ belong in "
       "src/scenario/catalog_*.cc so the catalog stays discoverable"},
      {"naked-new", Severity::kError,
       "naked `new` in src/ leaks on every early return; use "
       "std::make_unique/std::make_shared or a container"},
      {"printf-family", Severity::kError,
       "printf/fprintf/puts in library code bypasses common/logging.h and "
       "pollutes machine-read report streams"},
      {"allow-missing-reason", Severity::kError,
       "every ZLINT suppression must carry a written reason after the colon"},
      {"allow-unknown-rule", Severity::kError,
       "a ZLINT suppression naming an unregistered rule is a typo that "
       "silently suppresses nothing"},
  };
  return kRules;
}

// ---------------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------------

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool IsSourceFileName(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

// Directories never scanned: vendored code, deliberate-violation fixtures,
// build trees, and the linter's own sources (whose comments and test vectors
// are made of the very tokens the rules match).
bool IsExcludedDir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "third_party" || name == "lint_fixtures" || name == ".git" ||
         name == ".ccache" || StartsWith(name, "build") ||
         EndsWith(p.generic_string(), "tools/lint");
}

std::string Relative(const fs::path& p, const fs::path& root) {
  return fs::relative(p, root).generic_string();
}

}  // namespace

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kOff:
      return "off";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

bool ParseSeverity(std::string_view text, Severity* out) {
  if (text == "off") {
    *out = Severity::kOff;
  } else if (text == "warning") {
    *out = Severity::kWarning;
  } else if (text == "error") {
    *out = Severity::kError;
  } else {
    return false;
  }
  return true;
}

const std::vector<RuleInfo>& Rules() { return RuleTable(); }

const RuleInfo* FindRule(std::string_view name) {
  for (const RuleInfo& rule : RuleTable()) {
    if (rule.name == name) {
      return &rule;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Scrubber: blank out comments and string/char literals from `code`, collect
// comment text into `comments` (for suppression scanning).
// ---------------------------------------------------------------------------

SourceFile ScrubSource(std::string path, std::string_view text) {
  SourceFile file;
  file.path = std::move(path);

  enum class State {
    kNormal,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kNormal;
  std::string raw_delim;  // the )delim" terminator of an in-flight raw string

  std::string code_text;
  std::string comment_text;
  code_text.reserve(text.size());
  comment_text.reserve(text.size());

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) {
        state = State::kNormal;
      }
      code_text += '\n';
      comment_text += '\n';
      continue;
    }
    switch (state) {
      case State::kNormal:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_text += "  ";
          comment_text += "//";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_text += "  ";
          comment_text += "/*";
          ++i;
        } else if (c == '"') {
          const bool raw_prefix =
              i > 0 && text[i - 1] == 'R' &&
              (i < 2 || (!std::isalnum(static_cast<unsigned char>(text[i - 2])) &&
                         text[i - 2] != '_'));
          if (raw_prefix) {
            raw_delim = ")";
            std::size_t j = i + 1;
            while (j < text.size() && text[j] != '(') {
              raw_delim += text[j];
              ++j;
            }
            raw_delim += '"';
            state = State::kRawString;
          } else {
            state = State::kString;
          }
          code_text += '"';
          comment_text += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          code_text += '\'';
          comment_text += ' ';
        } else {
          code_text += c;
          comment_text += ' ';
        }
        break;
      case State::kLineComment:
        code_text += ' ';
        comment_text += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kNormal;
          code_text += "  ";
          comment_text += "*/";
          ++i;
        } else {
          code_text += ' ';
          comment_text += c;
        }
        break;
      case State::kString:
      case State::kChar: {
        comment_text += ' ';
        if (c == '\\') {
          code_text += ' ';
          if (next != '\0' && next != '\n') {
            code_text += ' ';
            comment_text += ' ';
            ++i;
          }
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          code_text += c;
          state = State::kNormal;
        } else {
          code_text += ' ';
        }
        break;
      }
      case State::kRawString:
        // Raw strings may span lines; blank everything until )delim".
        if (c == ')' && text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) {
            if (text[i + k] == '\n') {
              code_text += '\n';
              comment_text += '\n';
            } else {
              code_text += ' ';
              comment_text += ' ';
            }
          }
          code_text.back() = '"';
          i += raw_delim.size() - 1;
          state = State::kNormal;
        } else {
          code_text += ' ';
          comment_text += ' ';
        }
        break;
    }
  }

  auto split_lines = [](const std::string& s) {
    std::vector<std::string> lines;
    std::string current;
    for (char c : s) {
      if (c == '\n') {
        lines.push_back(current);
        current.clear();
      } else {
        current += c;
      }
    }
    lines.push_back(current);
    return lines;
  };
  {
    std::vector<std::string> raw_lines;
    std::string current;
    for (char c : text) {
      if (c == '\n') {
        raw_lines.push_back(current);
        current.clear();
      } else {
        current += c;
      }
    }
    raw_lines.push_back(current);
    file.raw = std::move(raw_lines);
  }
  file.code = split_lines(code_text);
  file.comments = split_lines(comment_text);

  // Parse suppressions out of the comment stream.
  static const std::regex kAllowRe(
      R"(ZLINT-ALLOW(-FILE)?\(([^)]*)\)(:?)[ \t]*(.*))");
  for (std::size_t i = 0; i < file.comments.size(); ++i) {
    const std::string& comment = file.comments[i];
    if (comment.find("ZLINT-ALLOW") == std::string::npos) {
      continue;
    }
    const std::size_t line_no = i + 1;
    std::smatch m;
    if (!std::regex_search(comment, m, kAllowRe)) {
      file.allow_findings.push_back(
          {file.path, line_no, "allow-missing-reason", Severity::kError,
           "malformed ZLINT suppression (want rule name in parentheses, then "
           "a colon and a reason)"});
      continue;
    }
    const bool file_wide = m[1].matched;
    const std::string rule = m[2].str();
    const std::string reason = m[4].str();
    if (FindRule(rule) == nullptr) {
      file.allow_findings.push_back(
          {file.path, line_no, "allow-unknown-rule", Severity::kError,
           "suppression names unknown rule '" + rule +
               "' (see zombie-lint --list-rules)"});
      continue;
    }
    if (m[3].str().empty() || reason.find_first_not_of(" \t") == std::string::npos) {
      file.allow_findings.push_back(
          {file.path, line_no, "allow-missing-reason", Severity::kError,
           "suppression of '" + rule + "' has no written reason"});
      continue;
    }
    if (file_wide) {
      file.allow_file_rules.push_back(rule);
    } else {
      file.allow_lines[rule].push_back(line_no);
      // A comment standing on its own line suppresses the next line too.
      const std::string& code = file.code[i];
      if (code.find_first_not_of(" \t") == std::string::npos) {
        file.allow_lines[rule].push_back(line_no + 1);
      }
    }
  }
  return file;
}

bool SourceFile::LineAllowed(std::string_view rule, std::size_t line) const {
  for (const std::string& r : allow_file_rules) {
    if (r == rule) {
      return true;
    }
  }
  auto it = allow_lines.find(rule);
  if (it == allow_lines.end()) {
    return false;
  }
  return std::find(it->second.begin(), it->second.end(), line) != it->second.end();
}

// ---------------------------------------------------------------------------
// Rule implementations.  Each returns findings at the rule's default
// severity; effective severity is applied by RunLint.
// ---------------------------------------------------------------------------

namespace {

void Emit(std::vector<Finding>* out, const SourceFile& file, std::size_t line,
          std::string_view rule, std::string message) {
  if (file.LineAllowed(rule, line)) {
    return;
  }
  out->push_back({file.path, line, std::string(rule), FindRule(rule)->severity,
                  std::move(message)});
}

bool InSrc(const SourceFile& f) { return StartsWith(f.path, "src/"); }
bool InSrcOrTools(const SourceFile& f) {
  return StartsWith(f.path, "src/") || StartsWith(f.path, "tools/");
}

// wall-clock: real clocks outside src/common/sim_clock.h (src/ and tools/;
// bench/ and tests/ legitimately measure wall time).
void CheckWallClock(const SourceFile& file, std::vector<Finding>* out) {
  if (!InSrcOrTools(file) || file.path == "src/common/sim_clock.h") {
    return;
  }
  static const std::regex kClockRe(
      // Bare `clock(` is deliberately absent: accessors named clock() are a
      // common simulated-time idiom here (EventQueue::clock()); the libc
      // version is still caught as std::clock(.
      R"((\b(system_clock|steady_clock|high_resolution_clock)\b)|(\b(clock_gettime|gettimeofday|localtime|gmtime|mktime)\s*\()|((^|[^\w.:>])time\s*\()|(std::(time|clock)\s*\())");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    if (std::regex_search(file.code[i], kClockRe)) {
      Emit(out, file, i + 1, "wall-clock",
           "real clock source in deterministic code (simulated time lives in "
           "src/common/sim_clock.h; wall-clock belongs only in explicitly "
           "non-deterministic timing fields)");
    }
  }
}

// libc-rand: global/unseeded randomness (all roots).
void CheckLibcRand(const SourceFile& file, std::vector<Finding>* out) {
  static const std::regex kRandRe(
      R"(((^|[^\w.>])(rand|srand|srandom|drand48|lrand48|mrand48|rand_r)\s*\()|(\brandom_device\b))");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    if (std::regex_search(file.code[i], kRandRe)) {
      Emit(out, file, i + 1, "libc-rand",
           "libc/global randomness is not seed-reproducible; use zombie::Rng "
           "with an explicit seed");
    }
  }
}

// unseeded-mt19937: a default-constructed engine (all roots).
void CheckUnseededMt19937(const SourceFile& file, std::vector<Finding>* out) {
  static const std::regex kMtRe(R"(\bmt19937(_64)?\s+\w+\s*(;|\{\s*\}))");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    if (std::regex_search(file.code[i], kMtRe)) {
      Emit(out, file, i + 1, "unseeded-mt19937",
           "std::mt19937 without an explicit seed; thread the scenario seed "
           "through (prefer zombie::Rng)");
    }
  }
}

// unordered-iter: range-for / begin() over a container declared
// unordered_map/unordered_set in this file or its sibling header (src/ only).
void CheckUnorderedIter(const SourceFile& file, const SourceFile* sibling,
                        std::vector<Finding>* out) {
  if (!InSrc(file)) {
    return;
  }
  static const std::regex kDeclRe(R"(unordered_(map|set)\s*<)");
  std::set<std::string> names;
  auto collect = [&](const SourceFile& f) {
    for (const std::string& line : f.code) {
      auto begin = std::sregex_iterator(line.begin(), line.end(), kDeclRe);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        // Walk the balanced template argument list, then take the identifier.
        std::size_t pos = static_cast<std::size_t>(it->position()) + it->length();
        int depth = 1;
        while (pos < line.size() && depth > 0) {
          if (line[pos] == '<') {
            ++depth;
          } else if (line[pos] == '>') {
            --depth;
          }
          ++pos;
        }
        if (depth != 0) {
          continue;  // declaration continues on the next line: heuristic pass
        }
        std::smatch name;
        const std::string rest = line.substr(pos);
        static const std::regex kNameRe(R"(^\s*([A-Za-z_]\w*))");
        if (std::regex_search(rest, name, kNameRe)) {
          names.insert(name[1].str());
        }
      }
    }
  };
  collect(file);
  if (sibling != nullptr) {
    collect(*sibling);
  }
  if (names.empty()) {
    return;
  }
  static const std::regex kRangeForRe(R"(\bfor\s*\(.*\s:\s*(.*))");
  static const std::regex kBeginRe(R"(([A-Za-z_]\w*)\s*\.\s*c?begin\s*\()");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    std::smatch m;
    std::string hit;
    if (std::regex_search(line, m, kRangeForRe)) {
      const std::string range = m[1].str();
      for (const std::string& name : names) {
        if (std::regex_search(range, std::regex("\\b" + name + "\\b"))) {
          hit = name;
          break;
        }
      }
    }
    if (hit.empty() && std::regex_search(line, m, kBeginRe) &&
        names.count(m[1].str()) > 0) {
      hit = m[1].str();
    }
    if (!hit.empty()) {
      Emit(out, file, i + 1, "unordered-iter",
           "iteration over unordered container '" + hit +
               "' is implementation-defined order; sort first, switch to an "
               "ordered container, or suppress with a written "
               "order-independence argument");
    }
  }
}

// nodiscard-fallible: Status/Result-returning declarations in src/ headers
// must be [[nodiscard]] (mirrors the annotation pass; the class-level
// [[nodiscard]] in result.h makes call sites fail under -Werror=unused-result,
// this rule keeps the per-API documentation in place for new surfaces).
void CheckNodiscardFallible(const SourceFile& file, std::vector<Finding>* out) {
  if (!InSrc(file) || !EndsWith(file.path, ".h")) {
    return;
  }
  static const std::regex kHeadRe(
      R"(^(\s*)((?:virtual\s+|static\s+|inline\s+|constexpr\s+|explicit\s+|friend\s+)*)((?:zombie::)?(?:Status|Result<)))");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    std::smatch m;
    if (!std::regex_search(line, m, kHeadRe)) {
      continue;
    }
    std::size_t pos = static_cast<std::size_t>(m.position(3)) + m[3].length();
    if (EndsWith(m[3].str(), "<")) {
      int depth = 1;
      while (pos < line.size() && depth > 0) {
        if (line[pos] == '<') {
          ++depth;
        } else if (line[pos] == '>') {
          --depth;
        }
        ++pos;
      }
      if (depth != 0) {
        continue;  // template args span lines: out of lexical reach
      }
    }
    static const std::regex kFnRe(R"(^\s+[A-Za-z_]\w*\s*\()");
    if (!std::regex_search(line.substr(pos), kFnRe)) {
      continue;  // member variable, constructor, or qualified definition
    }
    const bool annotated =
        line.find("[[nodiscard]]") != std::string::npos ||
        (i > 0 && file.code[i - 1].find("[[nodiscard]]") != std::string::npos);
    if (!annotated) {
      Emit(out, file, i + 1, "nodiscard-fallible",
           "fallible API returns Status/Result<T> without [[nodiscard]]");
    }
  }
}

// scenario-registration: catalog entries only in src/scenario/catalog_*.cc.
void CheckScenarioRegistration(const SourceFile& file, std::vector<Finding>* out) {
  if (!InSrc(file) || !EndsWith(file.path, ".cc") ||
      StartsWith(file.path, "src/scenario/catalog_")) {
    return;
  }
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    if (file.code[i].find("ZOMBIE_REGISTER_SCENARIO") != std::string::npos) {
      Emit(out, file, i + 1, "scenario-registration",
           "ZOMBIE_REGISTER_SCENARIO outside src/scenario/catalog_*.cc; move "
           "the registration into the catalog so `zombieland list` stays the "
           "single source of truth");
    }
  }
}

// naked-new: no raw `new` expressions in src/.
void CheckNakedNew(const SourceFile& file, std::vector<Finding>* out) {
  if (!InSrc(file)) {
    return;
  }
  static const std::regex kNewRe(R"(\bnew\b\s*[\w:(<])");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    if (std::regex_search(file.code[i], kNewRe)) {
      Emit(out, file, i + 1, "naked-new",
           "naked `new`; use std::make_unique/std::make_shared or a "
           "container (suppress only for intentionally-leaked singletons)");
    }
  }
}

// printf-family: stdout/stderr emission in library code (src/ only; the
// formatting-only snprintf family is fine).
void CheckPrintfFamily(const SourceFile& file, std::vector<Finding>* out) {
  if (!InSrc(file)) {
    return;
  }
  static const std::regex kPrintfRe(
      R"(\b(printf|fprintf|vprintf|vfprintf|puts|fputs|putchar|fputc|putc|perror)\s*\()");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    if (std::regex_search(file.code[i], kPrintfRe)) {
      Emit(out, file, i + 1, "printf-family",
           "printf-family emission in library code; route diagnostics "
           "through src/common/logging.h (ZLOG / FatalMessage)");
    }
  }
}

// include-selfcheck: every src/**/*.h appears in tests/include_selfcheck.cc.
void CheckIncludeSelfcheck(const std::vector<SourceFile>& files,
                           std::vector<Finding>* out) {
  const SourceFile* selfcheck = nullptr;
  std::vector<const SourceFile*> headers;
  for (const SourceFile& f : files) {
    if (f.path == "tests/include_selfcheck.cc") {
      selfcheck = &f;
    } else if (InSrc(f) && EndsWith(f.path, ".h")) {
      headers.push_back(&f);
    }
  }
  if (selfcheck == nullptr || headers.empty()) {
    return;  // partial scan (explicit path arguments): nothing to compare
  }
  std::set<std::string> included;
  static const std::regex kIncludeRe(R"(^#include\s+"(src/[^"]+\.h)\")");
  for (const std::string& line : selfcheck->raw) {
    std::smatch m;
    if (std::regex_search(line, m, kIncludeRe)) {
      included.insert(m[1].str());
    }
  }
  for (const SourceFile* header : headers) {
    if (included.count(header->path) == 0) {
      Emit(out, *selfcheck, 0, "include-selfcheck",
           "header '" + header->path +
               "' is not included by tests/include_selfcheck.cc; add it (in "
               "alphabetical order) so its self-containment stays checked");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

std::string FormatFinding(const Finding& finding) {
  std::ostringstream os;
  os << finding.file << ":" << finding.line << ": "
     << SeverityName(finding.severity) << "[" << finding.rule
     << "]: " << finding.message;
  return os.str();
}

LintResult RunLint(const Options& options) {
  LintResult result;
  const fs::path root = options.root.empty() ? fs::path(".") : fs::path(options.root);
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    result.io_errors.push_back("root '" + options.root + "' is not a directory");
    return result;
  }

  std::vector<std::string> roots = options.paths;
  if (roots.empty()) {
    for (const char* d : {"src", "tools", "bench", "tests"}) {
      if (fs::is_directory(root / d, ec)) {
        roots.push_back(d);
      }
    }
  }

  // Discover files (deterministic order: the set below is sorted).
  std::set<std::string> discovered;
  for (const std::string& rel : roots) {
    const fs::path p = root / rel;
    if (fs::is_regular_file(p, ec)) {
      discovered.insert(Relative(p, root));
    } else if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(
               p, fs::directory_options::skip_permission_denied, ec);
           it != fs::recursive_directory_iterator(); it.increment(ec)) {
        if (ec) {
          result.io_errors.push_back("walking '" + rel + "': " + ec.message());
          break;
        }
        if (it->is_directory() && IsExcludedDir(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && IsSourceFileName(it->path())) {
          discovered.insert(Relative(it->path(), root));
        }
      }
    } else {
      result.io_errors.push_back("path '" + rel + "' does not exist under '" +
                                 root.string() + "'");
    }
  }

  std::vector<SourceFile> files;
  files.reserve(discovered.size());
  for (const std::string& rel : discovered) {
    std::ifstream in(root / rel, std::ios::binary);
    if (!in) {
      result.io_errors.push_back("cannot read '" + rel + "'");
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    files.push_back(ScrubSource(rel, buf.str()));
  }
  result.files_scanned = files.size();

  // Sibling lookup for .cc -> .h pairing (unordered-iter).
  auto sibling_header = [&](const SourceFile& f) -> const SourceFile* {
    if (!EndsWith(f.path, ".cc")) {
      return nullptr;
    }
    const std::string want = f.path.substr(0, f.path.size() - 3) + ".h";
    for (const SourceFile& g : files) {
      if (g.path == want) {
        return &g;
      }
    }
    return nullptr;
  };

  std::vector<Finding> findings;
  for (const SourceFile& file : files) {
    for (const Finding& f : file.allow_findings) {
      findings.push_back(f);
    }
    CheckWallClock(file, &findings);
    CheckLibcRand(file, &findings);
    CheckUnseededMt19937(file, &findings);
    CheckUnorderedIter(file, sibling_header(file), &findings);
    CheckNodiscardFallible(file, &findings);
    CheckScenarioRegistration(file, &findings);
    CheckNakedNew(file, &findings);
    CheckPrintfFamily(file, &findings);
  }
  CheckIncludeSelfcheck(files, &findings);

  // Apply severity overrides, drop rules forced off.
  for (Finding& f : findings) {
    auto it = options.severity_overrides.find(f.rule);
    if (it != options.severity_overrides.end()) {
      f.severity = it->second;
    }
  }
  findings.erase(std::remove_if(findings.begin(), findings.end(),
                                [](const Finding& f) {
                                  return f.severity == Severity::kOff;
                                }),
                 findings.end());

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) {
      return a.file < b.file;
    }
    if (a.line != b.line) {
      return a.line < b.line;
    }
    return a.rule < b.rule;
  });
  result.findings = std::move(findings);
  return result;
}

}  // namespace zombie::lint
