// zombie-lint: project-invariant static analysis for the zombieland tree.
//
// The repo's gates (golden victim sequences, byte-identical -j N runs, the
// blocking diff gate, point-cache replay) all rest on invariants that the
// compiler and sanitizers cannot check: seeded determinism, non-discardable
// fallibles, and a handful of header/registry conventions.  zombie-lint is a
// dependency-free lexical/heuristic pass that encodes those invariants as a
// typed rule registry with per-rule severity and path scope.
//
// Suppressions (every one must carry a written reason):
//   // ZLINT-ALLOW(rule-name): reason            — this line (or, when the
//                                                  comment stands alone, the
//                                                  next line)
//   // ZLINT-ALLOW-FILE(rule-name): reason       — the whole file
//
// Exit-code contract (pinned by cmake/lint_contract.cmake):
//   0  clean (no findings at error severity)
//   1  findings at error severity (or warnings under --werror)
//   2  usage error or IO error (unreadable path, unknown rule name, ...)
#ifndef ZOMBIELAND_TOOLS_LINT_LINT_H_
#define ZOMBIELAND_TOOLS_LINT_LINT_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace zombie::lint {

enum class Severity { kOff, kWarning, kError };

std::string_view SeverityName(Severity severity);
// Parses "off" / "warning" / "error"; returns false on anything else.
bool ParseSeverity(std::string_view text, Severity* out);

// One rule in the registry.  `name` is the id used in diagnostics and in
// ZLINT-ALLOW(...) suppressions.
struct RuleInfo {
  std::string_view name;
  Severity severity;
  std::string_view rationale;
};

// The full rule catalog, in reporting order.
const std::vector<RuleInfo>& Rules();
// nullptr when `name` is not a registered rule.
const RuleInfo* FindRule(std::string_view name);

struct Finding {
  std::string file;   // root-relative path
  std::size_t line;   // 1-based; 0 anchors a whole-file finding
  std::string rule;
  Severity severity;  // effective severity (after --severity overrides)
  std::string message;
};

struct Options {
  // Repo root; scanned paths and reported file names are relative to it.
  std::string root = ".";
  // Files or directories to scan, relative to root.  Empty means the default
  // roots: src, tools, bench, tests.
  std::vector<std::string> paths;
  // Per-rule severity overrides (--severity RULE=off|warning|error).
  std::map<std::string, Severity, std::less<>> severity_overrides;
};

struct LintResult {
  std::vector<Finding> findings;   // sorted by (file, line, rule)
  std::vector<std::string> io_errors;
  std::size_t files_scanned = 0;
};

// Runs every registered rule over the tree described by `options`.
LintResult RunLint(const Options& options);

// Renders one finding as "file:line: severity[rule]: message".
std::string FormatFinding(const Finding& finding);

// A loaded source file with comment/string-scrubbed lines and parsed
// suppressions.  Exposed so tests/lint_test.cc can pin the scrubber and the
// suppression grammar directly.
struct SourceFile {
  std::string path;                    // root-relative
  std::vector<std::string> raw;        // original lines
  std::vector<std::string> code;       // literals and comments blanked out
  std::vector<std::string> comments;   // comment text per line (for ALLOWs)
  // rule name -> 1-based lines suppressed by ZLINT-ALLOW.
  std::map<std::string, std::vector<std::size_t>, std::less<>> allow_lines;
  // rules suppressed file-wide by ZLINT-ALLOW-FILE.
  std::vector<std::string> allow_file_rules;
  // Malformed suppressions found while parsing (already Finding-shaped).
  std::vector<Finding> allow_findings;

  bool LineAllowed(std::string_view rule, std::size_t line) const;
};

// Splits `text` into scrubbed lines + suppression tables.  Exposed for tests.
SourceFile ScrubSource(std::string path, std::string_view text);

}  // namespace zombie::lint

#endif  // ZOMBIELAND_TOOLS_LINT_LINT_H_
