// zombie-lint CLI.  See tools/lint/lint.h for the rule catalog and the
// suppression grammar, and BUILDING.md ("Static analysis") for how this is
// wired into check.sh and CI.
//
//   zombie-lint [--root=DIR] [paths...] [--severity RULE=LEVEL] [--werror]
//   zombie-lint --list-rules
//
// Exit codes: 0 clean, 1 findings, 2 usage or IO error.
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lint/lint.h"

namespace {

constexpr char kUsage[] =
    "usage: zombie-lint [options] [paths...]\n"
    "\n"
    "Lints the zombieland tree for project invariants (seeded determinism,\n"
    "non-discardable fallibles, header/registry conventions).  With no paths,\n"
    "scans src/ tools/ bench/ tests/ under --root.\n"
    "\n"
    "options:\n"
    "  --root=DIR             repo root to scan and report relative to (default .)\n"
    "  --severity=RULE=LEVEL  override a rule's severity (off|warning|error)\n"
    "  --werror               treat warning findings as errors (exit 1)\n"
    "  --list-rules           print the rule catalog and exit\n"
    "  --help                 this text\n"
    "\n"
    "exit codes: 0 clean, 1 findings, 2 usage or IO error\n";

}  // namespace

int main(int argc, char** argv) {
  zombie::lint::Options options;
  bool werror = false;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg.rfind("--root=", 0) == 0) {
      options.root = std::string(arg.substr(7));
      if (options.root.empty()) {
        std::fprintf(stderr, "zombie-lint: --root= needs a directory\n");
        return 2;
      }
    } else if (arg.rfind("--severity=", 0) == 0) {
      const std::string_view spec = arg.substr(11);
      const std::size_t eq = spec.find('=');
      if (eq == std::string_view::npos) {
        std::fprintf(stderr,
                     "zombie-lint: --severity wants RULE=off|warning|error, got '%s'\n",
                     std::string(spec).c_str());
        return 2;
      }
      const std::string rule(spec.substr(0, eq));
      zombie::lint::Severity severity;
      if (zombie::lint::FindRule(rule) == nullptr) {
        std::fprintf(stderr, "zombie-lint: unknown rule '%s' (see --list-rules)\n",
                     rule.c_str());
        return 2;
      }
      if (!zombie::lint::ParseSeverity(spec.substr(eq + 1), &severity)) {
        std::fprintf(stderr, "zombie-lint: bad severity '%s' (want off|warning|error)\n",
                     std::string(spec.substr(eq + 1)).c_str());
        return 2;
      }
      options.severity_overrides[rule] = severity;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "zombie-lint: unknown option '%s'\n%s",
                   std::string(arg).c_str(), kUsage);
      return 2;
    } else {
      options.paths.emplace_back(arg);
    }
  }

  if (list_rules) {
    for (const auto& rule : zombie::lint::Rules()) {
      std::printf("%-22s %-8s %s\n", std::string(rule.name).c_str(),
                  std::string(zombie::lint::SeverityName(rule.severity)).c_str(),
                  std::string(rule.rationale).c_str());
    }
    return 0;
  }

  const zombie::lint::LintResult result = zombie::lint::RunLint(options);
  for (const std::string& err : result.io_errors) {
    std::fprintf(stderr, "zombie-lint: %s\n", err.c_str());
  }
  if (!result.io_errors.empty()) {
    return 2;
  }
  if (result.files_scanned == 0) {
    std::fprintf(stderr, "zombie-lint: no source files found under '%s'\n",
                 options.root.c_str());
    return 2;
  }

  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const auto& finding : result.findings) {
    std::printf("%s\n", zombie::lint::FormatFinding(finding).c_str());
    if (finding.severity == zombie::lint::Severity::kError) {
      ++errors;
    } else {
      ++warnings;
    }
  }
  std::fprintf(stderr, "zombie-lint: %zu files, %zu errors, %zu warnings\n",
               result.files_scanned, errors, warnings);
  if (errors > 0 || (werror && warnings > 0)) {
    return 1;
  }
  return 0;
}
