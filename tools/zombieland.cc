// The zombieland CLI: list and run registered scenarios (see
// src/scenario/driver.h and BUILDING.md, "Running scenarios").
#include "src/scenario/driver.h"

int main(int argc, char** argv) {
  return zombie::scenario::ZombielandMain(argc, argv);
}
