// minigtest — a single-header, dependency-free subset of GoogleTest.
//
// Used when neither a system GoogleTest nor FetchContent is available
// (offline builds).  Implements exactly the surface this repository's test
// suites use:
//
//   * TEST / TEST_F / TEST_P + INSTANTIATE_TEST_SUITE_P
//   * ::testing::Test, ::testing::TestWithParam<T>, ::testing::TestParamInfo<T>
//   * ::testing::Values / ::testing::Combine param generators
//   * EXPECT_* / ASSERT_* for TRUE, FALSE, EQ, NE, LT, LE, GT, GE, NEAR,
//     DOUBLE_EQ, FLOAT_EQ, STREQ, STRNE; streaming `<< "context"` messages
//   * EXPECT_DEATH / ASSERT_DEATH compile the statement but never run it
//   * SUCCEED / FAIL / ADD_FAILURE, Test::HasFailure()
//   * RUN_ALL_TESTS with gtest-compatible output, --gtest_filter=PATTERNS
//     (':'-separated, '*'/'?' wildcards, '-' negative section) and
//     --gtest_list_tests (format understood by CMake's gtest_discover_tests)
//
// Not implemented: death-test execution, typed tests, matchers/gmock,
// SCOPED_TRACE, value printing customisation via PrintTo.
#ifndef MINIGTEST_GTEST_GTEST_H_
#define MINIGTEST_GTEST_GTEST_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace testing {

class Message {
 public:
  template <typename T>
  Message& operator<<(const T& value) {
    internal_stream_ << value;
    return *this;
  }
  std::string str() const { return internal_stream_.str(); }

 private:
  std::ostringstream internal_stream_;
};

namespace internal {

// ---------------------------------------------------------------------------
// Global state: registry of runnable tests and per-test failure tracking.

struct TestEntry {
  std::string suite;                // e.g. "Prefix/Fixture" or "Suite"
  std::string name;                 // e.g. "Case/0" or "Case"
  std::function<void()> run;        // constructs, runs, destroys the test
  std::string full() const { return suite + "." + name; }
};

inline std::vector<TestEntry>& Registry() {
  static std::vector<TestEntry> registry;
  return registry;
}

inline bool& CurrentTestFailed() {
  static bool failed = false;
  return failed;
}

inline bool& FatalFailureRequested() {
  static bool fatal = false;
  return fatal;
}

// ---------------------------------------------------------------------------
// Value printing (best effort; mirrors gtest's output closely enough for
// humans).

template <typename T, typename = void>
struct IsStreamable : std::false_type {};
template <typename T>
struct IsStreamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                            << std::declval<const T&>())>>
    : std::true_type {};

template <typename T>
std::string PrintValue(const T& value) {
  if constexpr (std::is_enum_v<T>) {
    using U = std::underlying_type_t<T>;
    std::ostringstream os;
    os << static_cast<std::conditional_t<sizeof(U) == 1, int, U>>(
        static_cast<U>(value));
    return os.str();
  } else if constexpr (std::is_same_v<T, bool>) {
    return value ? "true" : "false";
  } else if constexpr (std::is_same_v<T, std::nullptr_t>) {
    return "nullptr";
  } else if constexpr (IsStreamable<T>::value) {
    std::ostringstream os;
    os << value;
    return os.str();
  } else {
    std::ostringstream os;
    os << sizeof(T) << "-byte object <unprintable>";
    return os.str();
  }
}

// ---------------------------------------------------------------------------
// Assertion plumbing.  A failed check prints its summary immediately; the
// trailing `= Message() << ...` hook appends user context, gtest-style.

class AssertHelper {
 public:
  AssertHelper(const char* file, int line, std::string summary,
               bool fatal = false)
      : file_(file), line_(line), summary_(std::move(summary)), fatal_(fatal) {}

  void operator=(const Message& message) const {
    CurrentTestFailed() = true;
    if (fatal_) FatalFailureRequested() = true;
    std::string context = message.str();
    std::fprintf(stderr, "%s:%d: Failure\n%s%s%s\n", file_, line_,
                 summary_.c_str(), context.empty() ? "" : "\n",
                 context.c_str());
  }

 private:
  const char* file_;
  int line_;
  std::string summary_;
  bool fatal_;
};

struct CmpResult {
  bool ok = true;
  std::string message;
  explicit operator bool() const { return ok; }
};

template <typename A, typename B>
CmpResult CmpEQ(const char* ae, const char* be, const A& a, const B& b) {
  if (a == b) return {};
  return {false, std::string("Expected equality of these values:\n  ") + ae +
                     "\n    Which is: " + PrintValue(a) + "\n  " + be +
                     "\n    Which is: " + PrintValue(b)};
}

#define MINIGTEST_DEFINE_CMP_(fn, op, verb)                                  \
  template <typename A, typename B>                                          \
  CmpResult fn(const char* ae, const char* be, const A& a, const B& b) {     \
    if (a op b) return {};                                                   \
    return {false, std::string("Expected: (") + ae + ") " verb " (" + be +   \
                       "), actual: " + PrintValue(a) + " vs " +              \
                       PrintValue(b)};                                       \
  }
MINIGTEST_DEFINE_CMP_(CmpNE, !=, "!=")
MINIGTEST_DEFINE_CMP_(CmpLT, <, "<")
MINIGTEST_DEFINE_CMP_(CmpLE, <=, "<=")
MINIGTEST_DEFINE_CMP_(CmpGT, >, ">")
MINIGTEST_DEFINE_CMP_(CmpGE, >=, ">=")
#undef MINIGTEST_DEFINE_CMP_

template <typename A, typename B, typename C>
CmpResult CmpNear(const char* ae, const char* be, const char* te, const A& a,
                  const B& b, const C& tol) {
  const double da = static_cast<double>(a);
  const double db = static_cast<double>(b);
  const double dt = static_cast<double>(tol);
  if (std::fabs(da - db) <= dt) return {};
  std::ostringstream os;
  os << "The difference between " << ae << " and " << be << " is "
     << std::fabs(da - db) << ", which exceeds " << te << ", where\n  " << ae
     << " evaluates to " << da << ",\n  " << be << " evaluates to " << db
     << ", and\n  " << te << " evaluates to " << dt << ".";
  return {false, os.str()};
}

// 4-ULP floating point comparison, as in gtest.
template <typename Raw, typename Bits>
bool AlmostEqual(Raw lhs, Raw rhs) {
  static constexpr Bits kMaxUlps = 4;
  if (std::isnan(lhs) || std::isnan(rhs)) return false;
  Bits lbits, rbits;
  std::memcpy(&lbits, &lhs, sizeof(Raw));
  std::memcpy(&rbits, &rhs, sizeof(Raw));
  const Bits sign_mask = static_cast<Bits>(1) << (sizeof(Bits) * 8 - 1);
  // Map two's-complement-ish float ordering onto an unsigned "biased" scale.
  auto biased = [&](Bits sam) -> Bits {
    return (sign_mask & sam) ? ~sam + 1 : sign_mask | sam;
  };
  const Bits bl = biased(lbits);
  const Bits br = biased(rbits);
  const Bits dist = bl >= br ? bl - br : br - bl;
  return dist <= kMaxUlps;
}

template <typename A, typename B>
CmpResult CmpDoubleEQ(const char* ae, const char* be, const A& a, const B& b) {
  const double da = static_cast<double>(a);
  const double db = static_cast<double>(b);
  if (AlmostEqual<double, std::uint64_t>(da, db)) return {};
  std::ostringstream os;
  os << "Expected equality of these values:\n  " << ae
     << "\n    Which is: " << da << "\n  " << be << "\n    Which is: " << db;
  return {false, os.str()};
}

template <typename A, typename B>
CmpResult CmpFloatEQ(const char* ae, const char* be, const A& a, const B& b) {
  const float fa = static_cast<float>(a);
  const float fb = static_cast<float>(b);
  if (AlmostEqual<float, std::uint32_t>(fa, fb)) return {};
  std::ostringstream os;
  os << "Expected equality of these values:\n  " << ae
     << "\n    Which is: " << fa << "\n  " << be << "\n    Which is: " << fb;
  return {false, os.str()};
}

inline CmpResult CmpStrEQ(const char* ae, const char* be, const char* a,
                          const char* b) {
  const bool equal = (a == nullptr || b == nullptr)
                         ? a == b
                         : std::strcmp(a, b) == 0;
  if (equal) return {};
  return {false, std::string("Expected equality of these values:\n  ") + ae +
                     "\n    Which is: " + (a ? a : "NULL") + "\n  " + be +
                     "\n    Which is: " + (b ? b : "NULL")};
}

inline CmpResult CmpStrNE(const char* ae, const char* be, const char* a,
                          const char* b) {
  const bool equal = (a == nullptr || b == nullptr)
                         ? a == b
                         : std::strcmp(a, b) == 0;
  if (!equal) return {};
  return {false, std::string("Expected: (") + ae + ") != (" + be +
                     "), actual: both are " + (a ? a : "NULL")};
}

inline CmpResult CmpBool(const char* expr, bool value, bool expected) {
  if (value == expected) return {};
  return {false, std::string("Value of: ") + expr + "\n  Actual: " +
                     (value ? "true" : "false") + "\nExpected: " +
                     (expected ? "true" : "false")};
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Test fixtures.

class Test {
 public:
  virtual ~Test() = default;
  static bool HasFailure() { return internal::CurrentTestFailed(); }
  virtual void TestBody() = 0;

 protected:
  Test() = default;
  virtual void SetUp() {}
  virtual void TearDown() {}

 private:
  friend void RunOneTest(Test* test);
};

inline void RunOneTest(Test* test) {
  test->SetUp();
  if (!internal::FatalFailureRequested()) {
    test->TestBody();
  }
  test->TearDown();
}

template <typename T>
class TestWithParam : public Test {
 public:
  using ParamType = T;
  static const ParamType& GetParam() { return *CurrentParam(); }
  static void SetParam(const ParamType* param) { CurrentParam() = param; }

 private:
  static const ParamType*& CurrentParam() {
    static const ParamType* param = nullptr;
    return param;
  }
};

template <typename T>
struct TestParamInfo {
  TestParamInfo(const T& a_param, std::size_t an_index)
      : param(a_param), index(an_index) {}
  T param;
  std::size_t index;
};

// ---------------------------------------------------------------------------
// Param generators: Values(...) and Combine(...).

namespace internal {

template <typename... Ts>
struct ValueArray {
  std::tuple<Ts...> values;

  template <typename T>
  operator std::vector<T>() const {  // NOLINT(google-explicit-constructor)
    std::vector<T> out;
    out.reserve(sizeof...(Ts));
    std::apply(
        [&out](const Ts&... vs) { (out.push_back(static_cast<T>(vs)), ...); },
        values);
    return out;
  }
};

template <std::size_t I, typename VecsTuple, typename Tuple>
void CartesianFill(const VecsTuple& vecs, Tuple& current,
                   std::vector<Tuple>& out) {
  if constexpr (I == std::tuple_size_v<VecsTuple>) {
    out.push_back(current);
  } else {
    for (const auto& v : std::get<I>(vecs)) {
      std::get<I>(current) = v;
      CartesianFill<I + 1>(vecs, current, out);
    }
  }
}

template <typename... Gens>
struct CombineHolder {
  std::tuple<Gens...> gens;

  template <typename... Us>
  operator std::vector<std::tuple<Us...>>() const {  // NOLINT
    static_assert(sizeof...(Us) == sizeof...(Gens),
                  "Combine() arity must match the fixture's tuple ParamType");
    return Expand<Us...>(std::index_sequence_for<Gens...>{});
  }

 private:
  template <typename... Us, std::size_t... Is>
  std::vector<std::tuple<Us...>> Expand(std::index_sequence<Is...>) const {
    auto vecs = std::make_tuple(
        static_cast<std::vector<Us>>(std::get<Is>(gens))...);
    std::vector<std::tuple<Us...>> out;
    std::tuple<Us...> current{};
    CartesianFill<0>(vecs, current, out);
    return out;
  }
};

// Per-fixture registry of TEST_P bodies, bound to params at INSTANTIATE time
// (TEST_P registrars run before INSTANTIATE registrars within a TU because
// they appear earlier in the file).
template <typename Fixture>
struct ParamRegistry {
  struct Entry {
    std::string suite;
    std::string name;
    std::function<Fixture*()> make;
  };
  static std::vector<Entry>& Entries() {
    static std::vector<Entry> entries;
    return entries;
  }
  static bool Add(const char* suite, const char* name,
                  std::function<Fixture*()> make) {
    Entries().push_back({suite, name, std::move(make)});
    return true;
  }
};

struct DefaultParamName {
  template <typename T>
  std::string operator()(const TestParamInfo<T>& info) const {
    return std::to_string(info.index);
  }
};

template <typename Fixture, typename Generator, typename NameGen>
bool InstantiateParamSuite(const char* prefix, const Generator& generator,
                           NameGen name_gen) {
  using Param = typename Fixture::ParamType;
  // Leak the param vector: registered closures point into it for the whole
  // program lifetime, mirroring gtest's own instantiation registry.
  auto* params = new std::vector<Param>(static_cast<std::vector<Param>>(generator));
  for (const auto& entry : ParamRegistry<Fixture>::Entries()) {
    for (std::size_t i = 0; i < params->size(); ++i) {
      TestEntry runnable;
      runnable.suite = std::string(prefix) + "/" + entry.suite;
      runnable.name =
          entry.name + "/" + name_gen(TestParamInfo<Param>((*params)[i], i));
      runnable.run = [make = entry.make, params, i]() {
        Fixture::SetParam(&(*params)[i]);
        std::unique_ptr<Fixture> test(make());
        RunOneTest(test.get());
        Fixture::SetParam(nullptr);
      };
      Registry().push_back(std::move(runnable));
    }
  }
  return true;
}

template <typename Fixture, typename Generator>
bool InstantiateParamSuite(const char* prefix, const Generator& generator) {
  return InstantiateParamSuite<Fixture>(prefix, generator,
                                        DefaultParamName{});
}

inline bool RegisterTest(const char* suite, const char* name,
                         std::function<Test*()> factory) {
  TestEntry entry;
  entry.suite = suite;
  entry.name = name;
  entry.run = [factory = std::move(factory)]() {
    std::unique_ptr<Test> test(factory());
    RunOneTest(test.get());
  };
  Registry().push_back(std::move(entry));
  return true;
}

// ---------------------------------------------------------------------------
// --gtest_filter matching: ':'-separated patterns with '*' and '?', and an
// optional '-'-prefixed negative section.

inline bool WildcardMatch(const char* pattern, const char* text) {
  while (*pattern != '\0') {
    if (*pattern == '*') {
      ++pattern;
      for (const char* t = text;; ++t) {
        if (WildcardMatch(pattern, t)) return true;
        if (*t == '\0') return false;
      }
    }
    if (*text == '\0') return false;
    if (*pattern != '?' && *pattern != *text) return false;
    ++pattern;
    ++text;
  }
  return *text == '\0';
}

inline bool MatchesAnyPattern(const std::string& patterns,
                              const std::string& name) {
  if (patterns.empty()) return false;
  std::size_t start = 0;
  while (start <= patterns.size()) {
    std::size_t end = patterns.find(':', start);
    if (end == std::string::npos) end = patterns.size();
    const std::string pattern = patterns.substr(start, end - start);
    if (!pattern.empty() && WildcardMatch(pattern.c_str(), name.c_str())) {
      return true;
    }
    start = end + 1;
  }
  return false;
}

inline bool MatchesFilter(const std::string& filter, const std::string& name) {
  std::string positive = filter;
  std::string negative;
  const std::size_t dash = filter.find('-');
  if (dash != std::string::npos) {
    positive = filter.substr(0, dash);
    negative = filter.substr(dash + 1);
  }
  if (positive.empty()) positive = "*";
  return MatchesAnyPattern(positive, name) &&
         !MatchesAnyPattern(negative, name);
}

inline std::string& Filter() {
  static std::string filter = "*";
  return filter;
}

inline bool& ListTestsFlag() {
  static bool list_tests = false;
  return list_tests;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Generator entry points.

template <typename... Ts>
internal::ValueArray<Ts...> Values(Ts... values) {
  return {std::make_tuple(values...)};
}

template <typename... Gens>
internal::CombineHolder<Gens...> Combine(Gens... gens) {
  return {std::make_tuple(gens...)};
}

// ---------------------------------------------------------------------------
// Runner.

inline void InitGoogleTest(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--gtest_filter=", 0) == 0) {
      internal::Filter() = arg.substr(std::strlen("--gtest_filter="));
    } else if (arg == "--gtest_list_tests") {
      internal::ListTestsFlag() = true;
    } else if (arg.rfind("--gtest_", 0) == 0) {
      // Accept and ignore all other gtest flags (color, brief, shuffle...).
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

inline void InitGoogleTest() {}

inline int RunAllTestsImpl() {
  auto& registry = internal::Registry();

  if (internal::ListTestsFlag()) {
    // gtest's --gtest_list_tests format, parsed by gtest_discover_tests.
    std::string last_suite;
    for (const auto& entry : registry) {
      if (entry.suite != last_suite) {
        std::printf("%s.\n", entry.suite.c_str());
        last_suite = entry.suite;
      }
      std::printf("  %s\n", entry.name.c_str());
    }
    return 0;
  }

  std::vector<const internal::TestEntry*> selected;
  for (const auto& entry : registry) {
    if (internal::MatchesFilter(internal::Filter(), entry.full())) {
      selected.push_back(&entry);
    }
  }

  std::printf("[==========] Running %zu test(s) (minigtest).\n",
              selected.size());
  std::vector<std::string> failed;
  for (const auto* entry : selected) {
    std::printf("[ RUN      ] %s\n", entry->full().c_str());
    std::fflush(stdout);
    internal::CurrentTestFailed() = false;
    internal::FatalFailureRequested() = false;
    entry->run();
    if (internal::CurrentTestFailed()) {
      failed.push_back(entry->full());
      std::printf("[  FAILED  ] %s\n", entry->full().c_str());
    } else {
      std::printf("[       OK ] %s\n", entry->full().c_str());
    }
    std::fflush(stdout);
  }
  std::printf("[==========] %zu test(s) ran.\n", selected.size());
  std::printf("[  PASSED  ] %zu test(s).\n", selected.size() - failed.size());
  if (!failed.empty()) {
    std::printf("[  FAILED  ] %zu test(s), listed below:\n", failed.size());
    for (const auto& name : failed) {
      std::printf("[  FAILED  ] %s\n", name.c_str());
    }
    return 1;
  }
  return 0;
}

}  // namespace testing

inline int RUN_ALL_TESTS() { return ::testing::RunAllTestsImpl(); }

// ---------------------------------------------------------------------------
// Test definition macros.

#define MINIGTEST_CLASS_NAME_(suite, name) suite##_##name##_Test
#define MINIGTEST_REGISTRAR_NAME_2_(a, b) a##_##b
#define MINIGTEST_REGISTRAR_NAME_(a, b) MINIGTEST_REGISTRAR_NAME_2_(a, b)

#define MINIGTEST_TEST_(suite, name, parent)                                  \
  class MINIGTEST_CLASS_NAME_(suite, name) : public parent {                  \
   public:                                                                    \
    void TestBody() override;                                                 \
  };                                                                          \
  [[maybe_unused]] static const bool MINIGTEST_REGISTRAR_NAME_(               \
      minigtest_reg_##suite, name) =                                          \
      ::testing::internal::RegisterTest(#suite, #name, []() -> ::testing::    \
                                                            Test* {           \
        return new MINIGTEST_CLASS_NAME_(suite, name)();                      \
      });                                                                     \
  void MINIGTEST_CLASS_NAME_(suite, name)::TestBody()

#define TEST(suite, name) MINIGTEST_TEST_(suite, name, ::testing::Test)
#define TEST_F(fixture, name) MINIGTEST_TEST_(fixture, name, fixture)

#define TEST_P(fixture, name)                                                 \
  class MINIGTEST_CLASS_NAME_(fixture, name) : public fixture {               \
   public:                                                                    \
    void TestBody() override;                                                 \
  };                                                                          \
  [[maybe_unused]] static const bool MINIGTEST_REGISTRAR_NAME_(               \
      minigtest_preg_##fixture, name) =                                       \
      ::testing::internal::ParamRegistry<fixture>::Add(                       \
          #fixture, #name, []() -> fixture* {                                 \
            return new MINIGTEST_CLASS_NAME_(fixture, name)();                \
          });                                                                 \
  void MINIGTEST_CLASS_NAME_(fixture, name)::TestBody()

#define INSTANTIATE_TEST_SUITE_P(prefix, fixture, ...)                        \
  [[maybe_unused]] static const bool MINIGTEST_REGISTRAR_NAME_(               \
      minigtest_inst_##prefix, fixture) =                                     \
      ::testing::internal::InstantiateParamSuite<fixture>(#prefix,            \
                                                          __VA_ARGS__)
// Pre-1.10 spelling used by some older suites.
#define INSTANTIATE_TEST_CASE_P INSTANTIATE_TEST_SUITE_P

// ---------------------------------------------------------------------------
// Assertion macros.  The `switch (0) case 0: default:` wrapper makes each
// macro a single statement usable in un-braced if/else, as in gtest.

// `on_failure` is empty for EXPECT_* and `return` for ASSERT_* (legal in the
// void TestBody; the AssertHelper's fatal flag also aborts the fixture when
// the failure happens inside SetUp).  `is_fatal` feeds that flag.
#define MINIGTEST_CHECK_(result_expr, on_failure, is_fatal)                   \
  switch (0)                                                                  \
  case 0:                                                                     \
  default:                                                                    \
    if (const ::testing::internal::CmpResult minigtest_cmp_ = (result_expr))  \
      ;                                                                       \
    else                                                                      \
      on_failure ::testing::internal::AssertHelper(                           \
          __FILE__, __LINE__, minigtest_cmp_.message, is_fatal) =             \
          ::testing::Message()

#define MINIGTEST_EXPECT_CMP_(cmp, a, b) \
  MINIGTEST_CHECK_(cmp(#a, #b, (a), (b)), , false)
#define MINIGTEST_ASSERT_CMP_(cmp, a, b) \
  MINIGTEST_CHECK_(cmp(#a, #b, (a), (b)), return, true)

#define EXPECT_TRUE(c)                                                         \
  MINIGTEST_CHECK_(::testing::internal::CmpBool(#c, static_cast<bool>(c), true), \
                   , false)
#define EXPECT_FALSE(c)                                                        \
  MINIGTEST_CHECK_(                                                            \
      ::testing::internal::CmpBool(#c, static_cast<bool>(c), false), , false)
#define ASSERT_TRUE(c)                                                         \
  MINIGTEST_CHECK_(::testing::internal::CmpBool(#c, static_cast<bool>(c), true), \
                   return, true)
#define ASSERT_FALSE(c)                                                        \
  MINIGTEST_CHECK_(                                                            \
      ::testing::internal::CmpBool(#c, static_cast<bool>(c), false), return,   \
      true)

#define EXPECT_EQ(a, b) MINIGTEST_EXPECT_CMP_(::testing::internal::CmpEQ, a, b)
#define EXPECT_NE(a, b) MINIGTEST_EXPECT_CMP_(::testing::internal::CmpNE, a, b)
#define EXPECT_LT(a, b) MINIGTEST_EXPECT_CMP_(::testing::internal::CmpLT, a, b)
#define EXPECT_LE(a, b) MINIGTEST_EXPECT_CMP_(::testing::internal::CmpLE, a, b)
#define EXPECT_GT(a, b) MINIGTEST_EXPECT_CMP_(::testing::internal::CmpGT, a, b)
#define EXPECT_GE(a, b) MINIGTEST_EXPECT_CMP_(::testing::internal::CmpGE, a, b)
#define ASSERT_EQ(a, b) MINIGTEST_ASSERT_CMP_(::testing::internal::CmpEQ, a, b)
#define ASSERT_NE(a, b) MINIGTEST_ASSERT_CMP_(::testing::internal::CmpNE, a, b)
#define ASSERT_LT(a, b) MINIGTEST_ASSERT_CMP_(::testing::internal::CmpLT, a, b)
#define ASSERT_LE(a, b) MINIGTEST_ASSERT_CMP_(::testing::internal::CmpLE, a, b)
#define ASSERT_GT(a, b) MINIGTEST_ASSERT_CMP_(::testing::internal::CmpGT, a, b)
#define ASSERT_GE(a, b) MINIGTEST_ASSERT_CMP_(::testing::internal::CmpGE, a, b)

#define EXPECT_STREQ(a, b) \
  MINIGTEST_EXPECT_CMP_(::testing::internal::CmpStrEQ, a, b)
#define EXPECT_STRNE(a, b) \
  MINIGTEST_EXPECT_CMP_(::testing::internal::CmpStrNE, a, b)
#define ASSERT_STREQ(a, b) \
  MINIGTEST_ASSERT_CMP_(::testing::internal::CmpStrEQ, a, b)
#define ASSERT_STRNE(a, b) \
  MINIGTEST_ASSERT_CMP_(::testing::internal::CmpStrNE, a, b)

#define EXPECT_DOUBLE_EQ(a, b) \
  MINIGTEST_EXPECT_CMP_(::testing::internal::CmpDoubleEQ, a, b)
#define ASSERT_DOUBLE_EQ(a, b) \
  MINIGTEST_ASSERT_CMP_(::testing::internal::CmpDoubleEQ, a, b)
#define EXPECT_FLOAT_EQ(a, b) \
  MINIGTEST_EXPECT_CMP_(::testing::internal::CmpFloatEQ, a, b)
#define ASSERT_FLOAT_EQ(a, b) \
  MINIGTEST_ASSERT_CMP_(::testing::internal::CmpFloatEQ, a, b)

#define EXPECT_NEAR(a, b, tol)                                                 \
  MINIGTEST_CHECK_(::testing::internal::CmpNear(#a, #b, #tol, (a), (b), (tol)), \
                   , false)
#define ASSERT_NEAR(a, b, tol)                                                 \
  MINIGTEST_CHECK_(::testing::internal::CmpNear(#a, #b, #tol, (a), (b), (tol)), \
                   return, true)

// Death tests are compiled but never executed (no fork/exec machinery).
#define EXPECT_DEATH(stmt, pattern)  \
  do {                               \
    if (false) {                     \
      stmt;                          \
      static_cast<void>(pattern);    \
    }                                \
  } while (false)
#define ASSERT_DEATH(stmt, pattern) EXPECT_DEATH(stmt, pattern)

#define ADD_FAILURE()                                                      \
  ::testing::internal::AssertHelper(__FILE__, __LINE__, "Failed") =        \
      ::testing::Message()
#define FAIL()                                                             \
  return ::testing::internal::AssertHelper(__FILE__, __LINE__, "Failed",   \
                                           true) = ::testing::Message()
#define SUCCEED() static_cast<void>(0)
#define GTEST_SKIP() return static_cast<void>(0)

// SCOPED_TRACE: evaluates the message (so side effects and type checking
// match real gtest) but does not thread it into failure output.
#define MINIGTEST_CONCAT_INNER_(a, b) a##b
#define MINIGTEST_CONCAT_(a, b) MINIGTEST_CONCAT_INNER_(a, b)
#define SCOPED_TRACE(message)                                             \
  const ::std::string MINIGTEST_CONCAT_(minigtest_scoped_trace_,          \
                                        __LINE__) = [&] {                 \
    ::std::ostringstream minigtest_trace_stream;                          \
    minigtest_trace_stream << (message);                                  \
    return minigtest_trace_stream.str();                                  \
  }()

#endif  // MINIGTEST_GTEST_GTEST_H_
