// Tests for the Explicit-SD split-driver block device: ring semantics,
// lazy/best-effort remote allocation, the async mirror fault-tolerance path,
// and the full guest-pager-over-virtio data path.
#include <gtest/gtest.h>

#include "src/cloud/rack.h"
#include "src/hv/guest_pager.h"
#include "src/hv/split_driver.h"

namespace zombie::hv {
namespace {

class SplitDriverTest : public ::testing::Test {
 protected:
  SplitDriverTest() {
    cloud::RackConfig config;
    config.buff_size = 4 * kMiB;
    config.materialize_memory = false;
    rack_ = std::make_unique<cloud::Rack>(config);
    auto profile = acpi::MachineProfile::HpCompaqElite8300();
    user_ = &rack_->AddServer("user", profile, {8, 16 * kGiB});
    zombie_ = &rack_->AddServer("zombie", profile, {8, 16 * kGiB});
    EXPECT_TRUE(rack_->PushToZombie(zombie_->id()).ok());
  }

  std::unique_ptr<cloud::Rack> rack_;
  cloud::Server* user_ = nullptr;
  cloud::Server* zombie_ = nullptr;
};

TEST_F(SplitDriverTest, LazyAllocationOnFirstUse) {
  SwapDeviceBackend device(&rack_->manager(user_->id()), 16 * kMiB);
  EXPECT_EQ(device.remote_capacity(), 0u);
  auto completion = device.Submit({BlockRequest::Op::kWrite, 0, 1});
  ASSERT_TRUE(completion.ok());
  EXPECT_EQ(device.remote_capacity(), 16 * kMiB);
  EXPECT_EQ(device.stats().writes, 1u);
}

TEST_F(SplitDriverTest, EveryRequestPaysTheRingCrossing) {
  SplitDriverParams params;
  SwapDeviceBackend device(&rack_->manager(user_->id()), 16 * kMiB, params);
  auto write = device.Submit({BlockRequest::Op::kWrite, 3, 1});
  ASSERT_TRUE(write.ok());
  EXPECT_GE(write.value().device_time, params.request_overhead);
  auto read = device.Submit({BlockRequest::Op::kRead, 3, 2});
  ASSERT_TRUE(read.ok());
  EXPECT_GE(read.value().device_time, params.request_overhead);
  EXPECT_FALSE(read.value().served_from_mirror);
  EXPECT_EQ(device.stats().ring_round_trips, 2u);
}

TEST_F(SplitDriverTest, BeyondRemoteCapacityUsesLocalStorage) {
  // The zombie can lend ~14.4 GiB; ask for swap far beyond it so the tail
  // slots are local-storage-only.
  SwapDeviceBackend device(&rack_->manager(user_->id()), 32 * kGiB);
  ASSERT_TRUE(device.RefreshRemoteAllocation().ok());
  const auto beyond = device.remote_capacity() / kPageSize + 5;
  auto write = device.Submit({BlockRequest::Op::kWrite, beyond, 1});
  ASSERT_TRUE(write.ok());
  auto read = device.Submit({BlockRequest::Op::kRead, beyond, 2});
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().served_from_mirror);
  EXPECT_EQ(device.stats().mirror_hits, 1u);
}

TEST_F(SplitDriverTest, ReclaimFallsBackToMirrorReads) {
  SwapDeviceBackend device(&rack_->manager(user_->id()), 16 * kMiB);
  ASSERT_TRUE(device.Submit({BlockRequest::Op::kWrite, 7, 1}).ok());
  // The zombie wakes: all its buffers are reclaimed.
  ASSERT_TRUE(rack_->WakeServer(zombie_->id()).ok());
  auto read = device.Submit({BlockRequest::Op::kRead, 7, 2});
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().served_from_mirror);
  // The fault-tolerance property: no data lost, just slower.
  EXPECT_GE(read.value().device_time, 50 * kMicrosecond);
}

TEST_F(SplitDriverTest, RingPostPollCompletionFlow) {
  SwapDeviceBackend device(&rack_->manager(user_->id()), 16 * kMiB);
  device.Post({BlockRequest::Op::kWrite, 1, 100});
  device.Post({BlockRequest::Op::kWrite, 2, 101});
  device.Post({BlockRequest::Op::kRead, 1, 102});
  EXPECT_EQ(device.Poll(2), 2u);  // budgeted processing
  EXPECT_EQ(device.Poll(8), 1u);
  BlockCompletion completion;
  int seen = 0;
  while (device.PopCompletion(&completion)) {
    ++seen;
    EXPECT_TRUE(completion.success);
    EXPECT_GE(completion.id, 100u);
  }
  EXPECT_EQ(seen, 3);
  EXPECT_FALSE(device.PopCompletion(&completion));
}

TEST_F(SplitDriverTest, HourlyRefreshGrowsBestEffortCapacity) {
  // First allocation happens while another user hogs the pool; the refresh
  // later picks up freed buffers ("periodically called ... to take
  // advantage of unused remote buffers").
  auto& hog_mgr = rack_->manager(zombie_->id() /*unused id*/);
  (void)hog_mgr;
  auto hog = rack_->manager(user_->id()).AllocSwap(12 * kGiB);
  ASSERT_TRUE(hog.ok());

  SwapDeviceBackend device(&rack_->manager(user_->id()), 8 * kGiB);
  ASSERT_TRUE(device.RefreshRemoteAllocation().ok());
  const Bytes before = device.remote_capacity();
  EXPECT_LT(before, 8 * kGiB);  // pool was mostly taken

  ASSERT_TRUE(rack_->manager(user_->id()).ReleaseExtent(hog.value()).ok());
  ASSERT_TRUE(device.RefreshRemoteAllocation().ok());
  EXPECT_GT(device.remote_capacity(), before);
}

TEST_F(SplitDriverTest, GuestPagerOverSplitDriverEndToEnd) {
  SwapDeviceBackend device(&rack_->manager(user_->id()), 16 * kMiB);
  SplitDriverPageBackend backend(&device);
  GuestSwapConfig config;
  config.ram_reserve_fraction = 0.0;
  config.traffic_amplification = 1.0;
  GuestPager pager(256, 64, &backend, config);
  // Touch enough pages to force swap traffic through the whole stack.
  for (int round = 0; round < 3; ++round) {
    for (PageIndex p = 0; p < 256; ++p) {
      ASSERT_TRUE(pager.Access(p, true).ok());
    }
  }
  EXPECT_GT(pager.stats().major_faults, 0u);
  EXPECT_GT(device.stats().reads, 0u);
  EXPECT_GT(device.stats().writes, 0u);
  EXPECT_GT(device.stats().remote_bytes, 0u);
}

}  // namespace
}  // namespace zombie::hv
