// Tests for sweep points as first-class runs (PR 5): ForEachSweepPoint
// scheduling and per-point records, the --filter sweep subsets, the --set
// axis-vs-scalar diagnostic (the err.txt regression), per-scenario option
// routing for mixed axis/scalar declarations, shortest round-trip JSON
// numbers, the JSON document model, and cross-run diffing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/report.h"
#include "src/common/result.h"
#include "src/scenario/diff.h"
#include "src/scenario/driver.h"
#include "src/scenario/registry.h"
#include "src/scenario/scenario.h"
#include "src/common/work_queue.h"

namespace zombie::scenario {
namespace {

using report::Report;

// ---------------------------------------------------------------------------
// ForEachSweepPoint: per-point records and point-level parallelism.
// ---------------------------------------------------------------------------

ScenarioSpec TwoAxisSpec() {
  ScenarioSpec spec;
  spec.name = "swept";
  spec.title = "t";
  spec.params = {{"policy", ParamType::kString, "", "", {}},
                 {"fraction", ParamType::kDouble, "", "", {}}};
  spec.sweep = {SweepMode::kCross,
                {{"policy", {"FIFO", "Clock", "Mixed"}},
                 {"fraction", {"0.2", "0.5", "0.8"}}}};
  return spec;
}

TEST(ForEachSweepPointTest, RecordsAxesMetricsInGridOrder) {
  const ScenarioSpec spec = TwoAxisSpec();
  RunOptions options;
  RunContext ctx(spec, options);
  Report r("s", "t");
  ctx.ForEachSweepPoint(r, [](const SweepPoint& pt, report::SweepPointRecord& rec) {
    rec.Metric("index", static_cast<double>(pt.index()));
  });
  ASSERT_EQ(r.points().size(), 9u);
  for (std::size_t i = 0; i < r.points().size(); ++i) {
    const report::SweepPointRecord& rec = r.points()[i];
    ASSERT_EQ(rec.axes.size(), 2u);
    EXPECT_EQ(rec.axes[0].first, "policy");
    EXPECT_EQ(rec.axes[1].first, "fraction");
    ASSERT_EQ(rec.metrics.size(), 1u);
    EXPECT_EQ(rec.metrics[0].second, static_cast<double>(i));
  }
  EXPECT_EQ(r.points()[0].axes[0].second, "FIFO");
  EXPECT_EQ(r.points()[0].axes[1].second, "0.2");
  EXPECT_EQ(r.points()[8].axes[0].second, "Mixed");
  EXPECT_EQ(r.points()[8].axes[1].second, "0.8");
}

TEST(ForEachSweepPointTest, ParallelSchedulingMatchesSerialByteForByte) {
  const ScenarioSpec spec = TwoAxisSpec();
  auto render = [&](int jobs) {
    RunOptions options;
    options.point_jobs = jobs;
    RunContext ctx(spec, options);
    Report r("s", "t");
    auto grid = r.AddSweepTable("g", "", "fraction", {"0.2", "0.5", "0.8"},
                                {"FIFO", "Clock", "Mixed"});
    ctx.ForEachSweepPoint(r, [&](const SweepPoint& pt, report::SweepPointRecord& rec) {
      grid.Set(pt.AxisIndex("fraction"), pt.AxisIndex("policy"),
               pt.Value("policy") + "@" + pt.Value("fraction"));
      rec.Metric("fraction", pt.Double("fraction"));
    });
    return r.RenderJson();
  };
  const std::string serial = render(1);
  EXPECT_EQ(serial, render(4));
  EXPECT_EQ(serial, render(16));  // more workers than points
  EXPECT_NE(serial.find("\"points\""), std::string::npos);
}

TEST(ForEachSweepPointTest, WallSecondsOnlyEmittedUnderTimings) {
  const ScenarioSpec spec = TwoAxisSpec();
  for (const bool timings : {false, true}) {
    SCOPED_TRACE(timings);
    RunOptions options;
    options.timings = timings;
    RunContext ctx(spec, options);
    Report r("s", "t");
    ctx.ForEachSweepPoint(r, [](const SweepPoint&, report::SweepPointRecord&) {});
    const std::string json = r.RenderJson();
    EXPECT_TRUE(report::ValidateJson(json).ok());
    EXPECT_EQ(json.find("wall_seconds") != std::string::npos, timings);
  }
}

TEST(ForEachSweepPointTest, NoSweepMeansNoPointsSection) {
  ScenarioSpec spec;
  RunOptions options;
  RunContext ctx(spec, options);
  Report r("s", "t");
  ctx.ForEachSweepPoint(r, [](const SweepPoint&, report::SweepPointRecord&) {
    FAIL() << "no points expected";
  });
  EXPECT_TRUE(r.points().empty());
  EXPECT_EQ(r.RenderJson().find("\"points\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// --filter: validated sweep subsets.
// ---------------------------------------------------------------------------

TEST(FilterTest, SubsetKeepsAxisOrderAndShrinksGrid) {
  const ScenarioSpec spec = TwoAxisSpec();
  RunOptions options;
  options.filters["fraction"] = "0.8,0.2";  // CLI order != axis order
  RunContext ctx(spec, options);
  EXPECT_TRUE(ValidateRunParams(spec, options).ok());
  // The subset keeps the axis's own order: a filter never reorders the grid.
  EXPECT_EQ(ctx.Axis("fraction"), (std::vector<std::string>{"0.2", "0.8"}));
  EXPECT_EQ(ctx.SweepPoints().size(), 6u);  // 3 policies x 2 fractions
}

TEST(FilterTest, AppliesOnTopOfSetAxisReplacement) {
  const ScenarioSpec spec = TwoAxisSpec();
  RunOptions options;
  options.params["fraction"] = "0.1,0.9";  // axis replacement first
  options.filters["fraction"] = "0.9";     // then the subset
  EXPECT_TRUE(ValidateRunParams(spec, options).ok());
  RunContext ctx(spec, options);
  EXPECT_EQ(ctx.Axis("fraction"), (std::vector<std::string>{"0.9"}));
}

TEST(FilterTest, RejectsUnknownAxisNamingTheRealOnes) {
  const ScenarioSpec spec = TwoAxisSpec();
  RunOptions options;
  options.filters["nope"] = "1";
  const Status status = ValidateRunParams(spec, options);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not a sweep axis"), std::string::npos);
  EXPECT_NE(status.message().find("policy, fraction"), std::string::npos);
}

TEST(FilterTest, RejectsScalarParameterAsFilterKey) {
  ScenarioSpec spec = TwoAxisSpec();
  spec.params.push_back({"ratio", ParamType::kDouble, "1.0", "", {}});
  RunOptions options;
  options.filters["ratio"] = "1.0";
  const Status status = ValidateRunParams(spec, options);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("scalar parameter, not a sweep axis"),
            std::string::npos);
}

TEST(FilterTest, RejectsValueNotOnTheAxis) {
  const ScenarioSpec spec = TwoAxisSpec();
  RunOptions options;
  options.filters["fraction"] = "0.2,0.3";
  const Status status = ValidateRunParams(spec, options);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("'0.3' is not on axis 'fraction'"),
            std::string::npos);
  EXPECT_NE(status.message().find("0.2, 0.5, 0.8"), std::string::npos);
}

TEST(FilterTest, ValidatesAgainstTheReplacedAxis) {
  const ScenarioSpec spec = TwoAxisSpec();
  RunOptions options;
  options.params["fraction"] = "0.1,0.9";
  options.filters["fraction"] = "0.5";  // on the spec axis, not the override
  EXPECT_FALSE(ValidateRunParams(spec, options).ok());
}

TEST(FilterTest, ZipSweepFilterSelectsLockstepRows) {
  // Zip rows: (FIFO, 0.2), (Clock, 0.5), (Mixed, 0.8).  Filtering one axis
  // keeps whole rows — the other axes shrink in lockstep, and no (policy,
  // fraction) pair that was never a row can appear.
  ScenarioSpec spec = TwoAxisSpec();
  spec.sweep.mode = SweepMode::kZip;
  RunOptions options;
  options.filters["fraction"] = "0.2,0.8";
  ASSERT_TRUE(ValidateRunParams(spec, options).ok());
  RunContext ctx(spec, options);
  EXPECT_EQ(ctx.Axis("policy"), (std::vector<std::string>{"FIFO", "Mixed"}));
  EXPECT_EQ(ctx.Axis("fraction"), (std::vector<std::string>{"0.2", "0.8"}));
  const auto points = ctx.SweepPoints();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].Value("policy"), "FIFO");
  EXPECT_EQ(points[1].Value("policy"), "Mixed");
  EXPECT_EQ(points[1].Value("fraction"), "0.8");
}

TEST(FilterTest, ZipSweepCannotFabricateCombinations) {
  // Filters on two axes intersect rows; picking values from different rows
  // matches nothing and fails validation instead of inventing a point.
  ScenarioSpec spec = TwoAxisSpec();
  spec.sweep.mode = SweepMode::kZip;
  RunOptions options;
  options.filters["policy"] = "Mixed";    // row 2
  options.filters["fraction"] = "0.2";    // row 0
  const Status status = ValidateRunParams(spec, options);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("matches no row"), std::string::npos);
  // Same-row values select exactly that row.
  options.filters["fraction"] = "0.8";
  ASSERT_TRUE(ValidateRunParams(spec, options).ok());
  const auto points = RunContext(spec, options).SweepPoints();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].Value("policy"), "Mixed");
  EXPECT_EQ(points[0].Value("fraction"), "0.8");
}

TEST(FilterTest, RegistryRunExecutesStrictSubset) {
  auto found = ScenarioRegistry::Instance().Find("fig08");
  ASSERT_TRUE(found.ok());
  RunOptions options;
  options.smoke = true;
  options.filters["local_fraction"] = "0.4";
  auto report = found.value()->Run(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // 3 policies x 1 fraction, and each pivot table has exactly one row.
  EXPECT_EQ(report.value().points().size(), 3u);
  for (const auto& table : report.value().tables()) {
    EXPECT_EQ(table.rows().size(), 1u) << table.id();
  }
}

// ---------------------------------------------------------------------------
// The --set axis-vs-scalar diagnostic (the err.txt regression).
// ---------------------------------------------------------------------------

TEST(SetListOnScalarTest, DedicatedDiagnosticInsteadOfTypeError) {
  auto found = ScenarioRegistry::Instance().Find("table2b");
  ASSERT_TRUE(found.ok());
  RunOptions options;
  options.smoke = true;
  options.params["local_fraction"] = "0.3,0.5";
  auto report = found.value()->Run(options);
  ASSERT_FALSE(report.ok());
  const std::string message = report.status().message();  // status() is by-value
  EXPECT_NE(message.find("'local_fraction' is a scalar parameter"), std::string::npos)
      << message;
  EXPECT_NE(message.find("only replaces sweep axes"), std::string::npos);
  EXPECT_NE(message.find("axes: app"), std::string::npos);
  // The misleading pre-fix message must be gone.
  EXPECT_EQ(message.find("is not a finite number"), std::string::npos);
}

TEST(SetListOnScalarTest, SingleScalarValueStillOverrides) {
  auto found = ScenarioRegistry::Instance().Find("table2b");
  ASSERT_TRUE(found.ok());
  RunOptions options;
  options.smoke = true;
  options.params["local_fraction"] = "0.4";
  EXPECT_TRUE(found.value()->Run(options).ok());
}

TEST(SetListOnScalarTest, GenuinelyBadScalarKeepsTypeError) {
  auto found = ScenarioRegistry::Instance().Find("table2b");
  ASSERT_TRUE(found.ok());
  RunOptions options;
  options.params["local_fraction"] = "lots";
  auto report = found.value()->Run(options);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("not a finite number"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Per-scenario option routing (run --all with mixed declarations).
// ---------------------------------------------------------------------------

std::vector<const Scenario*> Lookup(const std::vector<const char*>& names) {
  std::vector<const Scenario*> out;
  for (const char* name : names) {
    auto found = ScenarioRegistry::Instance().Find(name);
    EXPECT_TRUE(found.ok()) << name;
    out.push_back(found.value());
  }
  return out;
}

TEST(PerScenarioRunOptionsTest, AxisListRoutesPastScalarDeclarations) {
  // local_fraction is a sweep axis of fig08/table1 but a scalar parameter of
  // table2b: the axis list must reshape the sweeps and be dropped for the
  // scalar declaration instead of aborting the run (the err.txt bug).
  const auto scenarios = Lookup({"fig08", "table1", "table2b"});
  RunOptions options;
  options.params["local_fraction"] = "0.3,0.5";
  auto per_scenario = PerScenarioRunOptions(scenarios, options);
  ASSERT_TRUE(per_scenario.ok()) << per_scenario.status().ToString();
  ASSERT_EQ(per_scenario.value().size(), 3u);
  EXPECT_EQ(per_scenario.value()[0].params.count("local_fraction"), 1u);  // fig08
  EXPECT_EQ(per_scenario.value()[1].params.count("local_fraction"), 1u);  // table1
  EXPECT_EQ(per_scenario.value()[2].params.count("local_fraction"), 0u);  // table2b
}

TEST(PerScenarioRunOptionsTest, ScalarValueStillReachesEveryDeclaration) {
  const auto scenarios = Lookup({"fig08", "table2b"});
  RunOptions options;
  options.params["local_fraction"] = "0.5";
  auto per_scenario = PerScenarioRunOptions(scenarios, options);
  ASSERT_TRUE(per_scenario.ok()) << per_scenario.status().ToString();
  EXPECT_EQ(per_scenario.value()[0].params.count("local_fraction"), 1u);
  EXPECT_EQ(per_scenario.value()[1].params.count("local_fraction"), 1u);
}

TEST(PerScenarioRunOptionsTest, ListOnScalarEverywhereKeepsDiagnostic) {
  // No target scenario sweeps the key: surface the axis-vs-scalar
  // diagnostic rather than silently dropping the flag.
  const auto scenarios = Lookup({"table2b", "ablation_mixed_depth"});
  RunOptions options;
  options.params["local_fraction"] = "0.3,0.5";
  auto per_scenario = PerScenarioRunOptions(scenarios, options);
  ASSERT_FALSE(per_scenario.ok());
  EXPECT_NE(per_scenario.status().message().find("scalar parameter"),
            std::string::npos);
}

TEST(PerScenarioRunOptionsTest, FiltersRouteToScenariosSweepingTheAxis) {
  const auto scenarios = Lookup({"fig08", "table2b"});
  RunOptions options;
  options.filters["local_fraction"] = "0.4";
  auto per_scenario = PerScenarioRunOptions(scenarios, options);
  ASSERT_TRUE(per_scenario.ok()) << per_scenario.status().ToString();
  EXPECT_EQ(per_scenario.value()[0].filters.count("local_fraction"), 1u);  // axis
  EXPECT_EQ(per_scenario.value()[1].filters.count("local_fraction"), 0u);  // scalar
}

TEST(PerScenarioRunOptionsTest, FilterValuesIntersectEachScenariosAxis) {
  // fig08 sweeps local_fraction over {0.2,0.4,0.6,0.8,1.0}, table1 over
  // {0.2,0.4,0.5,0.6,0.8}: a cross-catalog filter keeps the values each
  // axis actually has, and a scenario matching none runs unfiltered.
  const auto scenarios = Lookup({"fig08", "table1"});
  RunOptions options;
  options.filters["local_fraction"] = "0.5,0.6";
  auto per_scenario = PerScenarioRunOptions(scenarios, options);
  ASSERT_TRUE(per_scenario.ok()) << per_scenario.status().ToString();
  EXPECT_EQ(per_scenario.value()[0].filters.at("local_fraction"), "0.6");
  EXPECT_EQ(per_scenario.value()[1].filters.at("local_fraction"), "0.5,0.6");
  // 0.5 only: fig08 has no match and drops the filter (full sweep).
  options.filters["local_fraction"] = "0.5";
  per_scenario = PerScenarioRunOptions(scenarios, options);
  ASSERT_TRUE(per_scenario.ok()) << per_scenario.status().ToString();
  EXPECT_EQ(per_scenario.value()[0].filters.count("local_fraction"), 0u);
  EXPECT_EQ(per_scenario.value()[1].filters.at("local_fraction"), "0.5");
  // A value on no target axis at all is a run-level error.
  options.filters["local_fraction"] = "0.55";
  auto bad = PerScenarioRunOptions(scenarios, options);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("has any of those values"),
            std::string::npos);
}

TEST(PerScenarioRunOptionsTest, FilterAxisNowhereIsARunLevelError) {
  const auto scenarios = Lookup({"table2b", "fig10"});
  RunOptions options;
  options.filters["local_fraction"] = "0.4";
  auto per_scenario = PerScenarioRunOptions(scenarios, options);
  ASSERT_FALSE(per_scenario.ok());
  EXPECT_NE(per_scenario.status().message().find("no scenario in this run sweeps"),
            std::string::npos);
}

TEST(PerScenarioRunOptionsTest, SingleScenarioValidatesStrictly) {
  const auto scenarios = Lookup({"fig08"});
  RunOptions options;
  options.params["bogus"] = "1";
  EXPECT_FALSE(PerScenarioRunOptions(scenarios, options).ok());
}

// ---------------------------------------------------------------------------
// Shortest round-trip JSON numbers.
// ---------------------------------------------------------------------------

TEST(JsonNumberTest, ShortestRoundTrip) {
  EXPECT_EQ(report::JsonNumber(0.0), "0");
  EXPECT_EQ(report::JsonNumber(12.5), "12.5");
  EXPECT_EQ(report::JsonNumber(53.84), "53.84");
  EXPECT_EQ(report::JsonNumber(0.1), "0.1");
  EXPECT_EQ(report::JsonNumber(-3.25), "-3.25");
  EXPECT_EQ(report::JsonNumber(1e300), "1e+300");
  EXPECT_EQ(report::JsonNumber(1.0 / 0.0), "null");
  EXPECT_EQ(report::JsonNumber(0.0 / 0.0), "null");
}

TEST(JsonNumberTest, IntegralValuesRenderPlain) {
  // Fault counts and percents are integral doubles; they must not pick up
  // %g exponent notation (5060 -> "5.06e+03").
  EXPECT_EQ(report::JsonNumber(150.0), "150");
  EXPECT_EQ(report::JsonNumber(5060.0), "5060");
  EXPECT_EQ(report::JsonNumber(-8241.0), "-8241");
  EXPECT_EQ(report::JsonNumber(100.0), "100");
  EXPECT_EQ(report::JsonNumber(9007199254740991.0), "9007199254740991");  // 2^53-1
}

TEST(JsonNumberTest, EveryRenderingParsesBackExactly) {
  for (const double v : {53.84, 1.0 / 3.0, 2.0 / 3.0, 1e-17, 123456.789,
                         100.0 - 46.16, 0.30000000000000004}) {
    SCOPED_TRACE(v);
    const std::string rendered = report::JsonNumber(v);
    EXPECT_EQ(std::stod(rendered), v) << rendered;
    auto parsed = report::ParseJson(rendered);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().number, v);
  }
}

TEST(JsonNumberTest, MetricEmissionUsesShortestForm) {
  Report r("s", "t");
  r.Metric("noisy", 100.0 - 46.16);  // != the double nearest to "53.84"
  r.Metric("clean", 53.84);
  const std::string json = r.RenderJson();
  EXPECT_NE(json.find("\"clean\": 53.84"), std::string::npos) << json;
  // The noisy value renders as *its* shortest exact form, not a truncation.
  const double noisy = 100.0 - 46.16;
  EXPECT_NE(json.find("\"noisy\": " + report::JsonNumber(noisy)), std::string::npos);
}

// ---------------------------------------------------------------------------
// The JSON document model.
// ---------------------------------------------------------------------------

TEST(ParseJsonTest, BuildsTheDocumentModel) {
  auto parsed = report::ParseJson(
      "{\"a\": [1, 2.5, -3e2], \"b\": {\"nested\": \"x\\ny\"}, "
      "\"t\": true, \"n\": null}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const report::JsonValue& doc = parsed.value();
  ASSERT_TRUE(doc.is_object());
  const report::JsonValue* a = doc.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items.size(), 3u);
  EXPECT_EQ(a->items[0].number, 1.0);
  EXPECT_EQ(a->items[1].number, 2.5);
  EXPECT_EQ(a->items[2].number, -300.0);
  const report::JsonValue* nested = doc.Find("b")->Find("nested");
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->string, "x\ny");
  EXPECT_TRUE(doc.Find("t")->boolean);
  EXPECT_EQ(doc.Find("n")->kind, report::JsonValue::Kind::kNull);
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(ParseJsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(report::ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(report::ParseJson("[1, 2").ok());
  EXPECT_FALSE(report::ParseJson("{} trailing").ok());
  EXPECT_FALSE(report::ParseJson("\"unterminated").ok());
}

TEST(ParseJsonTest, RoundTripsARenderedReport) {
  Report r("sample", "title");
  auto& table = r.AddTable("t", "", {"a", "b"});
  table.Row({"x", "y"});
  r.Metric("m", 1.25);
  auto parsed = report::ParseJson(r.RenderJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().Find("scenario")->string, "sample");
  EXPECT_EQ(parsed.value().Find("metrics")->Find("m")->number, 1.25);
}

// ---------------------------------------------------------------------------
// Cross-run diffing.
// ---------------------------------------------------------------------------

std::string DocWithPoints(double exec_at_02, double scenario_metric) {
  Report r("fig_x", "t");
  r.Metric("headline", scenario_metric);
  auto& points = r.MutablePoints();
  points.resize(2);
  points[0].axes = {{"policy", "FIFO"}, {"fraction", "0.2"}};
  points[0].Metric("exec_seconds", exec_at_02);
  points[1].axes = {{"policy", "FIFO"}, {"fraction", "0.5"}};
  points[1].Metric("exec_seconds", 2.0);
  return r.RenderJson();
}

TEST(DiffReportDocsTest, ReportsPerPointAndScenarioDeltas) {
  auto diff = DiffReportDocs(DocWithPoints(1.0, 10.0), DocWithPoints(1.5, 10.0));
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  const Report& r = diff.value().report;
  ASSERT_EQ(r.tables().size(), 1u);
  ASSERT_EQ(r.tables()[0].rows().size(), 1u);  // only the changed metric
  const auto& row = r.tables()[0].rows()[0];
  EXPECT_EQ(row[0], "fig_x");
  EXPECT_EQ(row[1], "policy=FIFO,fraction=0.2");
  EXPECT_EQ(row[2], "exec_seconds");
  EXPECT_EQ(row[3], "1");
  EXPECT_EQ(row[4], "1.5");
  EXPECT_EQ(row[6], "+50.00%");
  EXPECT_EQ(row[7], "0");       // default tolerance: exact match
  EXPECT_EQ(row[8], "FAIL");    // an unexcused delta is a gate violation
  EXPECT_EQ(diff.value().violations, 1u);
}

TEST(DiffReportDocsTest, IdenticalDocsDiffClean) {
  const std::string doc = DocWithPoints(1.0, 10.0);
  auto diff = DiffReportDocs(doc, doc);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff.value().report.tables()[0].rows().empty());
  EXPECT_EQ(diff.value().violations, 0u);
}

TEST(DiffReportDocsTest, HandlesCombinedDocumentsAndStructuralChanges) {
  auto render = [](bool with_extra) {
    std::string out = "{\"schema\": \"zombieland.scenario.reports/v1\", \"reports\": [";
    out += DocWithPoints(1.0, 10.0);
    if (with_extra) {
      Report extra("other", "t");
      extra.Metric("m", 1.0);
      out += "," + extra.RenderJson();
    }
    out += "]}";
    return out;
  };
  auto diff = DiffReportDocs(render(false), render(true));
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  const std::string text = diff.value().report.RenderTableText();
  EXPECT_NE(text.find("scenario added: other"), std::string::npos) << text;
  EXPECT_EQ(diff.value().violations, 1u);  // structural change = gate FAIL
  auto reverse = DiffReportDocs(render(true), render(false));
  ASSERT_TRUE(reverse.ok());
  EXPECT_NE(reverse.value().report.RenderTableText().find("scenario removed: other"),
            std::string::npos);
  EXPECT_EQ(reverse.value().violations, 1u);
}

TEST(DiffReportDocsTest, RejectsGarbage) {
  EXPECT_FALSE(DiffReportDocs("not json", DocWithPoints(1, 1)).ok());
  EXPECT_FALSE(DiffReportDocs(DocWithPoints(1, 1), "{\"no\": \"reports\"}").ok());
}

// End-to-end: a registry scenario's rendered JSON diffs against itself
// cleanly, and against a --filter subset with point changes flagged.
TEST(DiffReportDocsTest, RegistryScenarioDiffsAgainstItsOwnSubset) {
  auto found = ScenarioRegistry::Instance().Find("ablation_mixed_depth");
  ASSERT_TRUE(found.ok());
  RunOptions options;
  options.smoke = true;
  auto full = found.value()->Run(options);
  ASSERT_TRUE(full.ok());
  options.filters["depth"] = "1,2,5";
  auto subset = found.value()->Run(options);
  ASSERT_TRUE(subset.ok());
  auto diff = DiffReportDocs(full.value().RenderJson(), subset.value().RenderJson());
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  // Shared points are byte-equal (no metric rows); dropped points are notes
  // (and gate violations: a vanished point fails --fail-on-delta).
  EXPECT_TRUE(diff.value().report.tables()[0].rows().empty());
  EXPECT_NE(diff.value().report.RenderTableText().find("point removed"),
            std::string::npos);
  EXPECT_GT(diff.value().violations, 0u);
}

// ---------------------------------------------------------------------------
// The shared -j N worker budget (WorkQueue + `run --all`).
// ---------------------------------------------------------------------------

TEST(WorkQueueTest, BudgetOneRunsUnitsInIndexOrder) {
  // The -j 1 path must be the historical serial loop, exactly.
  WorkQueue queue(1);
  std::vector<std::size_t> order;
  queue.RunBatch(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(WorkQueueTest, NestedBatchesShareTheBudgetWithoutDeadlock) {
  // The driver shape: an outer batch of scenarios, each submitting an inner
  // batch of sweep points to the same queue from a worker thread.
  WorkQueue queue(4);
  std::atomic<int> total{0};
  queue.RunBatch(3, [&](std::size_t) {
    queue.RunBatch(7, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 21);
}

TEST(WorkQueueTest, EveryUnitOfALargeBatchRunsExactlyOnce) {
  WorkQueue queue(4);
  std::vector<int> hits(997, 0);  // index-addressed slots: no locking needed
  queue.RunBatch(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "unit " << i;
  }
}

// In-process CLI run writing to --out; returns the exit code and the file.
int RunCli(std::vector<std::string> args, const std::string& out_path,
           std::string& out_text) {
  args.push_back("--out=" + out_path);
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& arg : args) {
    argv.push_back(arg.data());
  }
  const int rc = ZombielandMain(static_cast<int>(argv.size()), argv.data());
  out_text.clear();
  if (std::FILE* f = std::fopen(out_path.c_str(), "rb")) {
    char buf[1 << 12];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      out_text.append(buf, n);
    }
    std::fclose(f);
  }
  std::remove(out_path.c_str());
  return rc;
}

TEST(SharedBudgetTest, RunAllParallelIsByteIdenticalToSerial) {
  // `run --all -j 4` schedules every scenario AND every sweep point from one
  // shared budget; the rendered document must still match -j 1 byte for
  // byte.  (No --timings: wall-clock is legitimately run-dependent.)
  std::string serial;
  std::string parallel;
  ASSERT_EQ(RunCli({"zombieland", "run", "--all", "--smoke", "--format=json",
                    "-j", "1"},
                   "/tmp/zombieland_budget_j1.json", serial),
            0);
  ASSERT_EQ(RunCli({"zombieland", "run", "--all", "--smoke", "--format=json",
                    "-j", "4"},
                   "/tmp/zombieland_budget_j4.json", parallel),
            0);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace zombie::scenario
