// Tests for the datacenter simulation: trace generation (original and
// modified shapes) and the Fig. 10 policy comparison invariants.
#include <gtest/gtest.h>

#include "src/acpi/energy_model.h"
#include "src/sim/dc_sim.h"
#include "src/sim/trace.h"

namespace zombie::sim {
namespace {

TraceConfig SmallTrace() {
  TraceConfig config;
  config.seed = 99;
  config.servers = 40;
  config.tasks = 600;
  config.horizon = 12 * kHour;
  config.target_cpu_load = 0.35;
  return config;
}

TEST(Trace, DeterministicForSameSeed) {
  const Trace a = GenerateTrace(SmallTrace());
  const Trace b = GenerateTrace(SmallTrace());
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].start, b.tasks[i].start);
    EXPECT_EQ(a.tasks[i].booked_mem, b.tasks[i].booked_mem);
  }
}

TEST(Trace, TasksWellFormed) {
  const Trace trace = GenerateTrace(SmallTrace());
  EXPECT_EQ(trace.tasks.size(), 600u);
  for (const auto& task : trace.tasks) {
    EXPECT_GT(task.end, task.start);
    EXPECT_GT(task.booked_cpu, 0.0);
    EXPECT_LE(task.booked_cpu, 1.0);
    EXPECT_GT(task.booked_mem, 0.0);
    EXPECT_LE(task.booked_mem, 1.0);
    EXPECT_GE(task.cpu_usage_ratio, 0.0);
    EXPECT_LE(task.cpu_usage_ratio, 1.0);
  }
}

TEST(Trace, LoadNearTarget) {
  const Trace trace = GenerateTrace(SmallTrace());
  // Sample mid-horizon booked CPU: should be within a factor of ~2 of target.
  const double booked = trace.BookedCpuAt(6 * kHour);
  const double target = 0.35 * 40;
  EXPECT_GT(booked, target * 0.4);
  EXPECT_LT(booked, target * 2.5);
}

TEST(Trace, ModifiedTransformPinsMemoryToTwiceCpu) {
  const Trace base = GenerateTrace(SmallTrace());
  const Trace modified = WithMemoryRatio(base, 2.0);
  ASSERT_EQ(base.tasks.size(), modified.tasks.size());
  int capped = 0;
  for (std::size_t i = 0; i < base.tasks.size(); ++i) {
    if (modified.tasks[i].booked_mem >= 1.0 - 1e-12) {
      ++capped;
      continue;
    }
    // The paper's transform: memory demand is exactly twice the CPU demand.
    EXPECT_NEAR(modified.tasks[i].booked_mem, 2.0 * modified.tasks[i].booked_cpu, 1e-9);
  }
  // The cap at one server's memory applies to some, not all.
  EXPECT_LT(capped, static_cast<int>(base.tasks.size()));
  // Aggregate memory demand exceeds the original shape's.
  EXPECT_GT(modified.BookedMemAt(6 * kHour), 1.2 * base.BookedMemAt(6 * kHour));
}

TEST(Trace, TaskToVmConversion) {
  TraceTask task;
  task.id = 5;
  task.booked_cpu = 0.25;
  task.booked_mem = 0.5;
  task.cpu_usage_ratio = 0.4;
  const auto vm = TaskToVm(task, 16 * kGiB, 8);
  EXPECT_EQ(vm.id, 5u);
  EXPECT_EQ(vm.reserved_memory, 8 * kGiB);
  EXPECT_EQ(vm.vcpus, 2u);
  EXPECT_LT(vm.working_set, vm.reserved_memory);
}

class DcSimTest : public ::testing::Test {
 protected:
  DcSimTest()
      : trace_(GenerateTrace(SmallTrace())),
        profile_(acpi::MachineProfile::HpCompaqElite8300()) {}

  Trace trace_;
  acpi::MachineProfile profile_;
};

TEST_F(DcSimTest, AlwaysOnIsTheMostExpensive) {
  const auto results = RunAllPolicies(trace_, profile_);
  ASSERT_EQ(results.size(), 4u);
  const auto& baseline = results[0];
  EXPECT_EQ(baseline.policy, Policy::kAlwaysOn);
  EXPECT_NEAR(baseline.saving_percent, 0.0, 1e-9);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_LT(results[i].energy_units, baseline.energy_units)
        << PolicyName(results[i].policy);
    EXPECT_GT(results[i].saving_percent, 0.0);
  }
}

TEST_F(DcSimTest, ZombieStackBeatsNeatAndOasis) {
  // Fig. 10's headline ordering: ZombieStack > Oasis > Neat savings.
  const auto results = RunAllPolicies(trace_, profile_);
  const double neat = results[1].saving_percent;
  const double oasis = results[2].saving_percent;
  const double zombie = results[3].saving_percent;
  EXPECT_GT(zombie, oasis);
  EXPECT_GE(oasis, neat - 1.0);  // Oasis >= Neat (within noise)
}

TEST_F(DcSimTest, ModifiedTraceAmplifiesZombieAdvantage) {
  // Fig. 10 bottom: with memory demand at 2x CPU, the gap between
  // ZombieStack and the others widens.
  const Trace modified = WithMemoryRatio(trace_, 2.0);
  const auto original = RunAllPolicies(trace_, profile_);
  const auto doubled = RunAllPolicies(modified, profile_);
  const double gap_original = original[3].saving_percent - original[1].saving_percent;
  const double gap_modified = doubled[3].saving_percent - doubled[1].saving_percent;
  EXPECT_GT(gap_modified, gap_original);
  // And ZombieStack still wins outright.
  EXPECT_GT(doubled[3].saving_percent, doubled[2].saving_percent);
}

TEST_F(DcSimTest, SuspendedServersOnlyUnderConsolidation) {
  const auto always_on = RunPolicy(trace_, Policy::kAlwaysOn, profile_);
  EXPECT_EQ(always_on.suspended_peak, 0u);
  const auto zombie = RunPolicy(trace_, Policy::kZombieStack, profile_);
  EXPECT_GT(zombie.suspended_peak, 0u);
  EXPECT_GT(zombie.migrations, 0u);
  EXPECT_LT(zombie.mean_active_servers, 40.0);
}

TEST_F(DcSimTest, OasisUsesMemoryServers) {
  const auto oasis = RunPolicy(trace_, Policy::kOasis, profile_);
  EXPECT_GT(oasis.memory_servers_peak, 0u);
  const auto neat = RunPolicy(trace_, Policy::kNeat, profile_);
  EXPECT_EQ(neat.memory_servers_peak, 0u);
}

TEST_F(DcSimTest, DeterministicAcrossRuns) {
  const auto a = RunPolicy(trace_, Policy::kZombieStack, profile_);
  const auto b = RunPolicy(trace_, Policy::kZombieStack, profile_);
  EXPECT_DOUBLE_EQ(a.energy_units, b.energy_units);
  EXPECT_EQ(a.migrations, b.migrations);
}

TEST_F(DcSimTest, SavingsHoldOnBothMachineProfiles) {
  for (const auto& profile :
       {acpi::MachineProfile::HpCompaqElite8300(), acpi::MachineProfile::DellPrecisionT5810()}) {
    const auto results = RunAllPolicies(trace_, profile);
    EXPECT_GT(results[3].saving_percent, results[1].saving_percent) << profile.name();
  }
}

}  // namespace
}  // namespace zombie::sim
