// Unit tests for the migration protocols (Fig. 9 behaviours).
#include <gtest/gtest.h>

#include "src/migration/migration.h"

namespace zombie::migration {
namespace {

hv::VmSpec MakeVm(Bytes reserved, Bytes wss) {
  hv::VmSpec vm;
  vm.id = 1;
  vm.reserved_memory = reserved;
  vm.working_set = wss;
  return vm;
}

TEST(PreCopy, FirstRoundMovesFullMemory) {
  const auto vm = MakeVm(4 * kGiB, 1 * kGiB);
  const auto est = PreCopyMigrate(vm);
  ASSERT_GE(est.rounds.size(), 2u);
  EXPECT_EQ(est.rounds[0].transferred, 4 * kGiB);
  EXPECT_GE(est.bytes_moved, 4 * kGiB);
  EXPECT_GT(est.downtime, 0);
}

TEST(PreCopy, TimeInsensitiveToWss) {
  // The paper: "the migration time is almost not affected by the WSS".
  const auto small = PreCopyMigrate(MakeVm(4 * kGiB, 512 * kMiB));
  const auto large = PreCopyMigrate(MakeVm(4 * kGiB, 3 * kGiB));
  const double ratio = static_cast<double>(large.total_time) /
                       static_cast<double>(small.total_time);
  EXPECT_LT(ratio, 1.6);  // mild growth only
  EXPECT_GT(ratio, 1.0);
}

TEST(PreCopy, ConvergesWithLowDirtyRate) {
  MigrationConfig config;
  config.dirty_wss_fraction_per_sec = 0.01;
  const auto est = PreCopyMigrate(MakeVm(1 * kGiB, 512 * kMiB), config);
  // With a near-idle VM the iterations converge before the cap.
  EXPECT_LT(est.rounds.size(), 6u);
  EXPECT_LT(est.downtime, 100 * kMillisecond);
}

TEST(ZombieMigration, MovesOnlyTheHotLocalPart) {
  const auto vm = MakeVm(4 * kGiB, 1 * kGiB);
  const auto est = ZombieMigrate(vm, /*local_fraction=*/0.5, /*remote_buffers=*/8);
  // Hot part = min(WSS, 50% of reserved) = 1 GiB.
  EXPECT_EQ(est.bytes_moved, 1 * kGiB);
  EXPECT_LT(est.bytes_moved, PreCopyMigrate(vm).bytes_moved);
}

TEST(ZombieMigration, HotPartCappedByLocalShare) {
  const auto vm = MakeVm(4 * kGiB, 3 * kGiB);  // WSS above the local share
  const auto est = ZombieMigrate(vm, 0.5, 8);
  EXPECT_EQ(est.bytes_moved, 2 * kGiB);  // capped at 50% of reserved
}

TEST(ZombieMigration, FasterThanPreCopyAcrossWssRange) {
  // Fig. 9: ZombieStack outperforms native migration, especially at low WSS.
  for (double wss_ratio : {0.2, 0.4, 0.6, 0.8}) {
    const Bytes reserved = 4 * kGiB;
    const auto vm = MakeVm(reserved, static_cast<Bytes>(wss_ratio * reserved));
    const auto native = PreCopyMigrate(vm);
    const auto zombie = ZombieMigrate(vm, 0.5, 16);
    EXPECT_LT(zombie.total_time, native.total_time) << "wss_ratio=" << wss_ratio;
  }
}

TEST(ZombieMigration, TimeGrowsWithWss) {
  const auto low = ZombieMigrate(MakeVm(4 * kGiB, 512 * kMiB), 0.5, 8);
  const auto high = ZombieMigrate(MakeVm(4 * kGiB, 2 * kGiB), 0.5, 8);
  EXPECT_GT(high.total_time, low.total_time);
}

TEST(ZombieMigration, OwnershipUpdatesScaleWithBuffers) {
  const auto vm = MakeVm(4 * kGiB, 1 * kGiB);
  const auto few = ZombieMigrate(vm, 0.5, 2);
  const auto many = ZombieMigrate(vm, 0.5, 64);
  EXPECT_GT(many.total_time, few.total_time);
  // But pointer updates stay far below data movement.
  EXPECT_LT(many.total_time - few.total_time, few.total_time);
}

TEST(ZombieMigration, ZeroLocalFractionMovesNothingButPointers) {
  const auto vm = MakeVm(1 * kGiB, 512 * kMiB);
  const auto est = ZombieMigrate(vm, 0.0, 4);
  EXPECT_EQ(est.bytes_moved, 0u);
  EXPECT_GT(est.total_time, 0);
}

}  // namespace
}  // namespace zombie::migration
