// Integration tests: full-stack scenarios exercising several modules
// together — the complete zombie lifecycle over the rack, workloads paging
// against real zombie memory, consolidation followed by suspension, the
// RPC-wired control path, and the surplus deep-sleep policy.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/cloud/consolidation.h"
#include "src/cloud/placement.h"
#include "src/cloud/rack.h"
#include "src/hv/backend.h"
#include "src/migration/migration.h"
#include "src/remotemem/wire.h"
#include "src/workloads/app_models.h"
#include "src/workloads/runner.h"

namespace zombie {
namespace {

using cloud::Rack;
using cloud::RackConfig;
using cloud::Role;
using cloud::Server;
using cloud::ServerCapacity;

RackConfig TestRack(Bytes buff = 4 * kMiB, bool materialize = false) {
  RackConfig config;
  config.buff_size = buff;
  config.materialize_memory = materialize;
  return config;
}

hv::VmSpec MakeVm(hv::VmId id, Bytes reserved, std::uint32_t cpus) {
  hv::VmSpec vm;
  vm.id = id;
  vm.reserved_memory = reserved;
  vm.working_set = reserved / 2;
  vm.vcpus = cpus;
  return vm;
}

// ---------------------------------------------------------------------------
// Scenario 1: full zombie lifecycle — suspend, lend, page against the
// sleeping host, reclaim on wake, re-delegate.
// ---------------------------------------------------------------------------

TEST(Integration, ZombieLifecycleTwice) {
  Rack rack(TestRack());
  auto profile = acpi::MachineProfile::HpCompaqElite8300();
  Server& user = rack.AddServer("user", profile, {8, 16 * kGiB});
  Server& host = rack.AddServer("host", profile, {8, 16 * kGiB});

  for (int cycle = 0; cycle < 2; ++cycle) {
    ASSERT_TRUE(rack.PushToZombie(host.id()).ok()) << "cycle " << cycle;
    EXPECT_TRUE(rack.fabric().NodeMemoryAccessible(host.node()));

    auto extent = rack.manager(user.id()).AllocExtension(512 * kMiB);
    ASSERT_TRUE(extent.ok()) << extent.status().ToString();
    ASSERT_TRUE(extent.value()->WritePage(0, {}).ok());
    ASSERT_TRUE(extent.value()->ReadPage(0, {}).ok());

    ASSERT_TRUE(rack.WakeServer(host.id()).ok());
    EXPECT_EQ(host.machine().state(), acpi::SleepState::kS0);
    EXPECT_EQ(rack.controller().FreeRemoteBytes(), 0u);
    // The user's page survived via the mirror.
    EXPECT_TRUE(extent.value()->ReadPage(0, {}).ok());
    ASSERT_TRUE(rack.manager(user.id()).ReleaseExtent(extent.value()).ok());
  }
}

// ---------------------------------------------------------------------------
// Scenario 2: a real workload paging against a zombie server's memory,
// cross-checked against a plain device model of the same latency.
// ---------------------------------------------------------------------------

TEST(Integration, WorkloadOverZombieMemoryMatchesDeviceModel) {
  Rack rack(TestRack());
  auto profile = acpi::MachineProfile::HpCompaqElite8300();
  Server& user = rack.AddServer("user", profile, {8, 16 * kGiB});
  Server& host = rack.AddServer("host", profile, {8, 16 * kGiB});
  ASSERT_TRUE(rack.PushToZombie(host.id()).ok());

  workloads::AppProfile app = workloads::DataCachingProfile();
  app.accesses = 300'000;
  auto extent = rack.manager(user.id()).AllocExtension(app.reserved_memory);
  ASSERT_TRUE(extent.ok());
  hv::RemoteBackend remote(extent.value());

  workloads::WorkloadRunner runner;
  const auto over_rack = runner.RunRamExt(app, 0.2, &remote);
  EXPECT_GT(over_rack.pager.major_faults, 0u);

  // A device backend with the fabric's one-sided 4 KiB cost must price the
  // same workload within a few percent (the extent adds no data path cost).
  const Duration page_cost = rack.fabric().params().OneSidedCost(kPageSize);
  hv::DeviceBackend device("model", {page_cost, page_cost});
  const auto over_model = runner.RunRamExt(app, 0.2, &device);
  EXPECT_EQ(over_rack.pager.faults, over_model.pager.faults);
  EXPECT_NEAR(static_cast<double>(over_rack.sim_time),
              static_cast<double>(over_model.sim_time),
              0.02 * static_cast<double>(over_model.sim_time));
}

// ---------------------------------------------------------------------------
// Scenario 3: placement -> consolidation -> zombie suspension -> power drop,
// with the remote pool sized by what the zombies actually lent.
// ---------------------------------------------------------------------------

TEST(Integration, ConsolidateThenSuspendDropsPower) {
  Rack rack(TestRack());
  auto profile = acpi::MachineProfile::DellPrecisionT5810();
  for (int i = 0; i < 4; ++i) {
    rack.AddServer("node" + std::to_string(i), profile, {8, 16 * kGiB});
  }
  std::vector<Server*> hosts;
  for (const auto& s : rack.servers()) {
    hosts.push_back(s.get());
  }

  // Initial placement through Nova: one busy host, two stragglers.
  cloud::NovaScheduler nova;
  auto place = [&](hv::VmId id, Bytes mem, std::uint32_t cpus, Server* target) {
    ASSERT_TRUE(target->HostVm(MakeVm(id, mem, cpus), mem).ok());
  };
  place(1, 6 * kGiB, 6, hosts[0]);
  place(2, 2 * kGiB, 1, hosts[1]);
  place(3, 2 * kGiB, 1, hosts[2]);

  const double power_before = rack.TotalPowerPercent();

  cloud::NeatPlanner planner(
      cloud::ConsolidationConfig{cloud::ConsolidationMode::kZombieStack, 0.20, 0.90, 0.30});
  const auto plan = planner.Plan(hosts);
  EXPECT_GE(plan.migrations.size(), 2u);
  for (const auto& move : plan.migrations) {
    Server* from = rack.FindServer(move.from);
    Server* to = rack.FindServer(move.to);
    const hv::VmSpec vm = from->vms().at(move.vm);
    ASSERT_TRUE(from->DropVm(move.vm).ok());
    ASSERT_TRUE(
        to->HostVm(vm, static_cast<Bytes>(0.30 * static_cast<double>(vm.working_set))).ok());
  }
  for (auto id : plan.hosts_to_suspend) {
    ASSERT_TRUE(rack.PushToZombie(id).ok());
  }

  EXPECT_LT(rack.TotalPowerPercent(), power_before - 10.0);
  EXPECT_GT(rack.controller().FreeRemoteBytes(), 20 * kGiB);
  // Every VM still has its booked memory reachable: local + pool.
  for (Server* server : hosts) {
    for (const auto& [vm_id, vm] : server->vms()) {
      const Bytes local = server->LocalBytesOf(vm_id);
      EXPECT_LE(local, vm.reserved_memory);
      EXPECT_LE(vm.reserved_memory - local, rack.controller().FreeRemoteBytes());
    }
  }
  // And the placement filter would admit another remote-heavy VM now.
  nova.set_remote_pool(rack.controller().FreeRemoteBytes());
  EXPECT_TRUE(nova.Place(hosts, MakeVm(9, 8 * kGiB, 2)).has_value());
}

// ---------------------------------------------------------------------------
// Scenario 4: the GS_* control path over the fabric, against a rack whose
// controller node is a real server.
// ---------------------------------------------------------------------------

TEST(Integration, RpcControlPathAgainstRackController) {
  Rack rack(TestRack());
  auto profile = acpi::MachineProfile::HpCompaqElite8300();
  Server& ctr_box = rack.AddServer("ctr", profile, {8, 16 * kGiB});
  Server& agent_box = rack.AddServer("agent", profile, {8, 16 * kGiB});
  ctr_box.set_role(Role::kGlobalController);

  rdma::RpcServer rpc_server(&rack.verbs(), ctr_box.node());
  remotemem::ControllerEndpoint endpoint(&rack.controller(), &rpc_server);
  rdma::RpcRouter router(&rack.verbs());
  router.AddServer(&rpc_server);
  remotemem::ControllerClient client(&router, agent_box.node(), ctr_box.node());

  // Delegate over the wire on behalf of the agent server.
  std::vector<remotemem::BufferGrant> grants;
  for (int i = 0; i < 4; ++i) {
    rdma::MrAccess access;
    access.materialize = false;
    auto rkey = rack.verbs().RegisterRegion(agent_box.node(), 4 * kMiB, access);
    ASSERT_TRUE(rkey.ok());
    grants.push_back({remotemem::kInvalidBuffer, rkey.value(), 4 * kMiB, agent_box.id(),
                      remotemem::BufferType::kZombie});
  }
  auto ids = client.GotoZombie(agent_box.id(), grants);
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  EXPECT_EQ(rack.controller().FreeRemoteBytes(), 16 * kMiB);

  // The mirrored secondary saw every wire-driven operation.
  EXPECT_GE(rack.secondary().mirrored_ops(), 4u);

  // When the controller's host suspends, the control path fails cleanly
  // (the RPC daemon needs a CPU) — this is why the secondary exists.
  ASSERT_TRUE(ctr_box.machine().Suspend(acpi::SleepState::kS3).ok());
  auto blocked = client.AllocExt(agent_box.id(), 4 * kMiB);
  EXPECT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.code(), ErrorCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// Scenario 5: surplus zombies sink to S3 and leave the pool consistent.
// ---------------------------------------------------------------------------

TEST(Integration, SurplusZombiesDeepSleep) {
  Rack rack(TestRack());
  auto profile = acpi::MachineProfile::HpCompaqElite8300();
  Server& user = rack.AddServer("user", profile, {8, 16 * kGiB});
  Server& z1 = rack.AddServer("z1", profile, {8, 16 * kGiB});
  Server& z2 = rack.AddServer("z2", profile, {8, 16 * kGiB});
  ASSERT_TRUE(rack.PushToZombie(z1.id()).ok());
  ASSERT_TRUE(rack.PushToZombie(z2.id()).ok());
  const Bytes pool = rack.controller().FreeRemoteBytes();

  // Pin one buffer on whichever zombie the allocator picks first.
  auto extent = rack.manager(user.id()).AllocExtension(4 * kMiB);
  ASSERT_TRUE(extent.ok());

  // Keep at least half the pool: exactly one all-free zombie can retire.
  const std::size_t slept = rack.DeepSleepSurplusZombies(pool / 4);
  EXPECT_EQ(slept, 1u);
  const bool z1_s3 = z1.machine().state() == acpi::SleepState::kS3;
  const bool z2_s3 = z2.machine().state() == acpi::SleepState::kS3;
  EXPECT_NE(z1_s3, z2_s3);  // exactly one went deeper
  // The S3 sleeper's memory is unreachable; the remaining zombie still
  // serves the allocated extent.
  EXPECT_TRUE(extent.value()->WritePage(0, {}).ok());
  // Pool shrank by the retired server's share.
  EXPECT_LT(rack.controller().FreeRemoteBytes(), pool - 10 * kGiB);
}

// ---------------------------------------------------------------------------
// Scenario 6: migration decision integrated with rack state — migrating a
// VM between hosts whose remote part stays in place.
// ---------------------------------------------------------------------------

TEST(Integration, MigrationUsesRemoteBufferCount) {
  Rack rack(TestRack(64 * kMiB));
  auto profile = acpi::MachineProfile::HpCompaqElite8300();
  Server& a = rack.AddServer("a", profile, {8, 16 * kGiB});
  rack.AddServer("b", profile, {8, 16 * kGiB});
  Server& z = rack.AddServer("z", profile, {8, 16 * kGiB});
  ASSERT_TRUE(rack.PushToZombie(z.id()).ok());

  // VM with half its memory remote.
  hv::VmSpec vm = MakeVm(1, 8 * kGiB, 4);
  ASSERT_TRUE(a.HostVm(vm, 4 * kGiB).ok());
  auto extent = rack.manager(a.id()).AllocExtension(4 * kGiB);
  ASSERT_TRUE(extent.ok());

  const auto estimate =
      migration::ZombieMigrate(vm, 0.5, extent.value()->buffer_count());
  const auto native = migration::PreCopyMigrate(vm);
  EXPECT_LT(estimate.total_time, native.total_time);
  EXPECT_EQ(estimate.bytes_moved, vm.working_set);  // hot part = WSS (4 GiB)
}

}  // namespace
}  // namespace zombie
