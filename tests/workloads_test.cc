// Unit tests for the workload models: access patterns, application profiles,
// and the workload runner's penalty measurements.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/hv/backend.h"
#include "src/workloads/access_pattern.h"
#include "src/workloads/app_models.h"
#include "src/workloads/runner.h"

namespace zombie::workloads {
namespace {

TEST(AccessPattern, DeterministicForSameSeed) {
  PatternParams params;
  params.tiers = {{0.5, 0.3}};
  params.zipf_weight = 0.5;
  AccessPattern a(1000, params, 7);
  AccessPattern b(1000, params, 7);
  for (int i = 0; i < 500; ++i) {
    const auto x = a.Next();
    const auto y = b.Next();
    EXPECT_EQ(x.page, y.page);
    EXPECT_EQ(x.is_write, y.is_write);
  }
}

TEST(AccessPattern, PagesStayInFootprint) {
  PatternParams params;
  params.tiers = {{0.3, 0.4}};
  params.zipf_weight = 0.4;
  AccessPattern pattern(257, params, 3);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(pattern.Next().page, 257u);
  }
}

TEST(AccessPattern, ScanTierIsCyclic) {
  PatternParams params;
  params.tiers = {{0.01, 1.0}};  // pure scan over 1% of the footprint
  AccessPattern pattern(1000, params, 5);
  const std::uint64_t scan_pages = 10;  // 1% of 1000
  for (std::uint64_t i = 0; i < 3 * scan_pages; ++i) {
    EXPECT_EQ(pattern.Next().page, i % scan_pages);
  }
}

TEST(AccessPattern, NestedTiersKeepIndependentCursors) {
  PatternParams params;
  params.tiers = {{0.01, 0.5}, {0.02, 0.5}};
  AccessPattern pattern(1000, params, 5);
  // Each tier sweeps its own region; pages never leave the widest region.
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(pattern.Next().page, 20u);
  }
}

TEST(AccessPattern, WriteRatioRespected) {
  PatternParams params;
  params.write_ratio = 0.25;
  AccessPattern pattern(100, params, 11);
  int writes = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    writes += pattern.Next().is_write ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(writes) / n, 0.25, 0.02);
}

TEST(AccessPattern, ZipfSkewsTowardHotSet) {
  PatternParams params;
  params.zipf_weight = 1.0;
  params.zipf_theta = 0.95;
  AccessPattern pattern(10000, params, 13);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) {
    ++counts[pattern.Next().page];
  }
  // A strongly skewed stream touches far fewer distinct pages than uniform.
  EXPECT_LT(counts.size(), 6000u);
}

// The zipf draw has two implementations: the precomputed rank-threshold
// table (small footprints) and the direct pow expression (large footprints).
// Replaying the generator's exact draw sequence against the pow formula
// checks that the table inversion is bit-identical, write flags included.
TEST(AccessPattern, ZipfTablePathMatchesPowPath) {
  constexpr std::uint64_t kFootprint = 4096;  // table path engaged
  for (double theta : {0.5, 0.85, 0.9, 0.99}) {
    PatternParams params;
    params.zipf_weight = 1.0;
    params.zipf_theta = theta;
    params.write_ratio = 0.3;
    AccessPattern pattern(kFootprint, params, 11);
    Rng reference(11);  // replays the generator's draw order by hand
    const double exponent = 1.0 / (1.0 - theta);
    for (int i = 0; i < 200'000; ++i) {
      const PageAccess got = pattern.Next();
      const bool want_write = reference.NextBool(0.3);
      const double selector = reference.NextDouble();
      ASSERT_LT(selector, 1.0);  // zipf_weight == 1: always the zipf branch
      const double z = reference.NextDouble();
      auto rank = static_cast<std::uint64_t>(static_cast<double>(kFootprint) *
                                             std::pow(z, exponent));
      if (rank >= kFootprint) {
        rank = kFootprint - 1;
      }
      ASSERT_EQ(got.page, (rank * 2654435761ULL) % kFootprint) << "theta=" << theta;
      ASSERT_EQ(got.is_write, want_write);
    }
  }
}

TEST(AppModels, AllProfilesNamedAndSane) {
  for (App app : AllApps()) {
    const AppProfile p = ProfileFor(app);
    EXPECT_EQ(p.app, app);
    EXPECT_FALSE(AppName(app).empty());
    EXPECT_GT(p.footprint_pages(), 0u);
    EXPECT_LE(p.working_set, p.reserved_memory);
    double total_weight = p.pattern.zipf_weight;
    for (const auto& tier : p.pattern.tiers) {
      EXPECT_GT(tier.fraction, 0.0);
      EXPECT_LE(tier.fraction, 1.0);
      total_weight += tier.weight;
    }
    EXPECT_LE(total_weight, 1.0 + 1e-9);
    EXPECT_GT(p.accesses, 100'000u);
  }
}

TEST(Runner, LocalOnlyBaselineHasOnlyFirstTouchFaults) {
  AppProfile profile = DataCachingProfile();
  profile.accesses = 100'000;
  WorkloadRunner runner;
  const RunResult base = runner.RunLocalOnly(profile);
  EXPECT_EQ(base.pager.major_faults, 0u);
  EXPECT_LE(base.pager.faults, profile.footprint_pages());
  EXPECT_GT(base.sim_time, 0);
}

TEST(Runner, RamExtPenaltyDecreasesWithLocalMemory) {
  AppProfile profile = ElasticsearchProfile();
  profile.reserved_memory = 16 * kMiB;
  profile.working_set = 14 * kMiB;
  profile.accesses = 200'000;
  WorkloadRunner runner;
  hv::DeviceBackend remote("remote-ram", {3 * kMicrosecond, 3 * kMicrosecond});
  const RunResult base = runner.RunLocalOnly(profile);
  const double p20 = PenaltyPercent(runner.RunRamExt(profile, 0.2, &remote), base);
  const double p50 = PenaltyPercent(runner.RunRamExt(profile, 0.5, &remote), base);
  const double p80 = PenaltyPercent(runner.RunRamExt(profile, 0.8, &remote), base);
  EXPECT_GT(p20, p50);
  EXPECT_GT(p50, p80);
  EXPECT_GE(p80, 0.0);
}

TEST(Runner, ExplicitSdSlowerThanRamExt) {
  AppProfile profile = ElasticsearchProfile();
  profile.reserved_memory = 16 * kMiB;
  profile.working_set = 14 * kMiB;
  profile.accesses = 200'000;
  WorkloadRunner runner;
  hv::DeviceBackend remote("remote-ram", {3 * kMicrosecond, 3 * kMicrosecond});
  const RunResult base = runner.RunLocalOnly(profile);
  const double re = PenaltyPercent(runner.RunRamExt(profile, 0.5, &remote), base);
  const double esd = PenaltyPercent(runner.RunExplicitSd(profile, 0.5, &remote), base);
  EXPECT_GT(esd, re);
}

TEST(Runner, SlowerSwapDeviceMeansBiggerPenalty) {
  AppProfile profile = SparkSqlProfile();
  profile.reserved_memory = 16 * kMiB;
  profile.working_set = 14 * kMiB;
  profile.accesses = 150'000;
  WorkloadRunner runner;
  hv::DeviceBackend remote("remote-ram", {3 * kMicrosecond, 3 * kMicrosecond});
  auto ssd = hv::MakeLocalSsdBackend();
  auto hdd = hv::MakeLocalHddBackend();
  const RunResult base = runner.RunLocalOnly(profile);
  const double p_remote = PenaltyPercent(runner.RunExplicitSd(profile, 0.5, &remote), base);
  const double p_ssd = PenaltyPercent(runner.RunExplicitSd(profile, 0.5, ssd.get()), base);
  const double p_hdd = PenaltyPercent(runner.RunExplicitSd(profile, 0.5, hdd.get()), base);
  EXPECT_LT(p_remote, p_ssd);
  EXPECT_LT(p_ssd, p_hdd);
}

TEST(Runner, DeterministicAcrossRuns) {
  AppProfile profile = MicroProfile();
  profile.reserved_memory = 8 * kMiB;
  profile.working_set = 7 * kMiB;
  profile.accesses = 100'000;
  WorkloadRunner runner;
  hv::DeviceBackend remote("remote-ram", {3 * kMicrosecond, 3 * kMicrosecond});
  const auto a = runner.RunRamExt(profile, 0.5, &remote);
  const auto b = runner.RunRamExt(profile, 0.5, &remote);
  EXPECT_EQ(a.sim_time, b.sim_time);
  EXPECT_EQ(a.pager.faults, b.pager.faults);
}

}  // namespace
}  // namespace zombie::workloads
