// Unit tests for the RDMA fabric simulator: fabric pricing, verbs semantics
// (including the zombie one-sided-access property), RPC over RDMA.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/rdma/fabric.h"
#include "src/rdma/rpc.h"
#include "src/rdma/verbs.h"

namespace zombie::rdma {
namespace {

// A controllable fake node.
struct FakeNode {
  bool cpu_on = true;
  bool memory_on = true;
};

class RdmaTest : public ::testing::Test {
 protected:
  RdmaTest() : verbs_(&fabric_) {
    user_id_ = Attach(&user_, "user");
    zombie_id_ = Attach(&zombie_, "zombie");
  }

  NodeId Attach(FakeNode* node, std::string name) {
    NodePort port;
    port.name = std::move(name);
    port.can_initiate = [node] { return node->cpu_on; };
    port.memory_accessible = [node] { return node->memory_on; };
    return fabric_.Attach(std::move(port));
  }

  Fabric fabric_;
  Verbs verbs_;
  FakeNode user_;
  FakeNode zombie_;
  NodeId user_id_ = kInvalidNode;
  NodeId zombie_id_ = kInvalidNode;
};

// ---------------------------------------------------------------------------
// Fabric pricing.
// ---------------------------------------------------------------------------

TEST_F(RdmaTest, OneSidedCostGrowsWithSize) {
  auto small = fabric_.PriceOneSided(user_id_, zombie_id_, 64);
  auto page = fabric_.PriceOneSided(user_id_, zombie_id_, 4096);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(page.ok());
  EXPECT_GT(page.value(), small.value());
  // A 4 KiB one-sided op lands in the low microseconds (FDR-class fabric).
  EXPECT_GT(page.value(), 1 * kMicrosecond);
  EXPECT_LT(page.value(), 10 * kMicrosecond);
}

TEST_F(RdmaTest, ZombieTargetServesOneSided) {
  zombie_.cpu_on = false;  // CPU dead, memory alive: the Sz condition
  auto cost = fabric_.PriceOneSided(user_id_, zombie_id_, 4096);
  EXPECT_TRUE(cost.ok());
}

TEST_F(RdmaTest, ZombieCannotInitiate) {
  zombie_.cpu_on = false;
  auto cost = fabric_.PriceOneSided(zombie_id_, user_id_, 4096);
  EXPECT_FALSE(cost.ok());
  EXPECT_EQ(cost.code(), ErrorCode::kFailedPrecondition);
}

TEST_F(RdmaTest, UnpoweredMemoryUnavailable) {
  zombie_.cpu_on = false;
  zombie_.memory_on = false;  // S3, not Sz
  auto cost = fabric_.PriceOneSided(user_id_, zombie_id_, 4096);
  EXPECT_FALSE(cost.ok());
  EXPECT_EQ(cost.code(), ErrorCode::kUnavailable);
}

TEST_F(RdmaTest, TwoSidedNeedsBothCpus) {
  zombie_.cpu_on = false;
  EXPECT_FALSE(fabric_.PriceTwoSided(user_id_, zombie_id_, 128).ok());
  zombie_.cpu_on = true;
  EXPECT_TRUE(fabric_.PriceTwoSided(user_id_, zombie_id_, 128).ok());
}

TEST_F(RdmaTest, DetachedNodeNotFound) {
  fabric_.Detach(zombie_id_);
  EXPECT_EQ(fabric_.PriceOneSided(user_id_, zombie_id_, 64).code(), ErrorCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Verbs: registration + one-sided data movement.
// ---------------------------------------------------------------------------

TEST_F(RdmaTest, WriteThenReadMovesRealBytes) {
  auto rkey = verbs_.RegisterRegion(zombie_id_, 64 * 1024);
  ASSERT_TRUE(rkey.ok());

  std::vector<std::byte> out(4096);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::byte>(i & 0xff);
  }
  ASSERT_TRUE(verbs_.Write(user_id_, rkey.value(), 8192, out).ok());

  std::vector<std::byte> in(4096);
  ASSERT_TRUE(verbs_.Read(user_id_, rkey.value(), 8192, in).ok());
  EXPECT_EQ(std::memcmp(in.data(), out.data(), out.size()), 0);
}

TEST_F(RdmaTest, WriteToZombieNodeSucceedsWithCpuOff) {
  auto rkey = verbs_.RegisterRegion(zombie_id_, 16 * 1024);
  ASSERT_TRUE(rkey.ok());
  zombie_.cpu_on = false;  // push the host into Sz after registration
  std::vector<std::byte> page(4096, std::byte{0xAB});
  EXPECT_TRUE(verbs_.Write(user_id_, rkey.value(), 0, page).ok());
  std::vector<std::byte> readback(4096);
  EXPECT_TRUE(verbs_.Read(user_id_, rkey.value(), 0, readback).ok());
  EXPECT_EQ(readback[123], std::byte{0xAB});
}

TEST_F(RdmaTest, OutOfBoundsRejected) {
  auto rkey = verbs_.RegisterRegion(zombie_id_, 4096);
  ASSERT_TRUE(rkey.ok());
  std::vector<std::byte> buf(4096);
  EXPECT_EQ(verbs_.Read(user_id_, rkey.value(), 1, buf).code(), ErrorCode::kInvalidArgument);
}

TEST_F(RdmaTest, UnknownRkeyRejected) {
  std::vector<std::byte> buf(64);
  EXPECT_EQ(verbs_.Read(user_id_, 999, 0, buf).code(), ErrorCode::kNotFound);
}

TEST_F(RdmaTest, AccessFlagsEnforced) {
  MrAccess read_only;
  read_only.remote_write = false;
  auto rkey = verbs_.RegisterRegion(zombie_id_, 4096, read_only);
  ASSERT_TRUE(rkey.ok());
  std::vector<std::byte> buf(64);
  EXPECT_EQ(verbs_.Write(user_id_, rkey.value(), 0, buf).code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(verbs_.Read(user_id_, rkey.value(), 0, buf).ok());
}

TEST_F(RdmaTest, UnmaterializedRegionPricesWithoutData) {
  MrAccess acc;
  acc.materialize = false;
  auto rkey = verbs_.RegisterRegion(zombie_id_, 1ULL << 34 /* 16 GiB, no alloc */, acc);
  ASSERT_TRUE(rkey.ok());
  std::vector<std::byte> buf(4096);
  auto cost = verbs_.Write(user_id_, rkey.value(), 1ULL << 33, buf);
  EXPECT_TRUE(cost.ok());
  EXPECT_GT(cost.value(), 0);
}

TEST_F(RdmaTest, DeregisterInvalidatesRkey) {
  auto rkey = verbs_.RegisterRegion(zombie_id_, 4096);
  ASSERT_TRUE(rkey.ok());
  EXPECT_TRUE(verbs_.DeregisterRegion(rkey.value()).ok());
  std::vector<std::byte> buf(64);
  EXPECT_EQ(verbs_.Read(user_id_, rkey.value(), 0, buf).code(), ErrorCode::kNotFound);
  EXPECT_FALSE(verbs_.DeregisterRegion(rkey.value()).ok());
}

TEST_F(RdmaTest, CompletionQueueRecordsOps) {
  auto rkey = verbs_.RegisterRegion(zombie_id_, 8192);
  ASSERT_TRUE(rkey.ok());
  CompletionQueue cq;
  std::vector<std::byte> buf(4096);
  ASSERT_TRUE(verbs_.Write(user_id_, rkey.value(), 0, buf, &cq, /*wr_id=*/77).ok());
  ASSERT_TRUE(verbs_.Read(user_id_, rkey.value(), 0, buf, &cq, /*wr_id=*/78).ok());
  Completion entries[4];
  ASSERT_EQ(cq.Poll(entries), 2u);
  EXPECT_EQ(entries[0].op, Completion::Op::kWrite);
  EXPECT_EQ(entries[0].wr_id, 77u);
  EXPECT_EQ(entries[1].op, Completion::Op::kRead);
  EXPECT_EQ(entries[1].bytes, 4096u);
}

TEST_F(RdmaTest, SendRecvDeliversPayload) {
  std::vector<std::byte> msg{std::byte{1}, std::byte{2}, std::byte{3}};
  ASSERT_TRUE(verbs_.Send(user_id_, zombie_id_, msg).ok());
  EXPECT_TRUE(verbs_.HasPending(zombie_id_));
  auto got = verbs_.Recv(zombie_id_);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), msg);
  EXPECT_FALSE(verbs_.HasPending(zombie_id_));
  EXPECT_EQ(verbs_.Recv(zombie_id_).code(), ErrorCode::kNotFound);
}

TEST_F(RdmaTest, FabricCountsTraffic) {
  fabric_.ResetCounters();
  auto rkey = verbs_.RegisterRegion(zombie_id_, 8192);
  std::vector<std::byte> buf(4096);
  ASSERT_TRUE(verbs_.Write(user_id_, rkey.value(), 0, buf).ok());
  ASSERT_TRUE(verbs_.Read(user_id_, rkey.value(), 0, buf).ok());
  EXPECT_EQ(fabric_.total_operations(), 2u);
  EXPECT_EQ(fabric_.total_bytes(), 8192u);
}

// ---------------------------------------------------------------------------
// RPC over RDMA.
// ---------------------------------------------------------------------------

TEST_F(RdmaTest, RpcRoundTrip) {
  RpcServer server(&verbs_, zombie_id_);
  server.RegisterMethod("echo", [](const Payload& req, PayloadWriter& out) -> Status {
    out.PutRaw(req);
    return Status::Ok();
  });
  RpcRouter router(&verbs_);
  router.AddServer(&server);

  PayloadWriter w;
  w.PutU64(0xdeadbeef);
  w.PutString("hello");
  const Payload request = w.Take();

  RpcCost cost;
  auto response = router.Call(user_id_, zombie_id_, "echo", request, &cost);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value(), request);
  EXPECT_GT(cost.client, 0);
  EXPECT_EQ(server.dispatched(), 1u);
}

TEST_F(RdmaTest, RpcToSuspendedServerFails) {
  RpcServer server(&verbs_, zombie_id_);
  server.RegisterMethod("noop", [](const Payload&, PayloadWriter&) { return Status::Ok(); });
  RpcRouter router(&verbs_);
  router.AddServer(&server);
  zombie_.cpu_on = false;  // the RPC daemon needs a CPU; one-sided does not
  auto response = router.Call(user_id_, zombie_id_, "noop", {});
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.code(), ErrorCode::kUnavailable);
}

TEST_F(RdmaTest, RpcUnknownMethod) {
  RpcServer server(&verbs_, zombie_id_);
  RpcRouter router(&verbs_);
  router.AddServer(&server);
  EXPECT_EQ(router.Call(user_id_, zombie_id_, "nope", {}).code(), ErrorCode::kNotFound);
}

TEST_F(RdmaTest, RpcNoServer) {
  RpcRouter router(&verbs_);
  EXPECT_EQ(router.Call(user_id_, zombie_id_, "x", {}).code(), ErrorCode::kUnavailable);
}

TEST_F(RdmaTest, RpcCallIntoReusesResponseBuffer) {
  RpcServer server(&verbs_, zombie_id_);
  server.RegisterMethod("echo", [](const Payload& req, PayloadWriter& out) -> Status {
    out.PutRaw(req);
    return Status::Ok();
  });
  RpcRouter router(&verbs_);
  router.AddServer(&server);

  Payload request;
  PayloadWriter w(&request);
  w.PutU64(7);
  Payload response;
  ASSERT_TRUE(router.CallInto(user_id_, zombie_id_, "echo", request, response).ok());
  EXPECT_EQ(response, request);
  const auto capacity = response.capacity();
  // A second same-sized call must not grow the client's poll slot: the
  // response bytes land in the existing storage (steady-state reuse).
  ASSERT_TRUE(router.CallInto(user_id_, zombie_id_, "echo", request, response).ok());
  EXPECT_EQ(response, request);
  EXPECT_EQ(response.capacity(), capacity);
  EXPECT_EQ(server.dispatched(), 2u);
}

TEST_F(RdmaTest, RpcResponseRingSlotsStayValidAcrossDispatches) {
  RpcServer server(&verbs_, zombie_id_);
  server.RegisterMethod("echo", [](const Payload& req, PayloadWriter& out) -> Status {
    out.PutRaw(req);
    return Status::Ok();
  });
  Payload first_request;
  PayloadWriter w(&first_request);
  w.PutU32(11);
  auto first = server.Dispatch("echo", first_request);
  ASSERT_TRUE(first.ok());
  const Payload* first_slot = first.value();
  // The next kRingSlots - 1 dispatches recycle *other* slots, so the first
  // response stays readable (the daemon's in-flight window).
  for (std::size_t i = 0; i + 1 < RpcServer::kRingSlots; ++i) {
    Payload request;
    PayloadWriter wr(&request);
    wr.PutU32(static_cast<std::uint32_t>(i));
    ASSERT_TRUE(server.Dispatch("echo", request).ok());
  }
  EXPECT_EQ(*first_slot, first_request);
}

TEST(PayloadCodec, RoundTripsAllTypes) {
  PayloadWriter w;
  w.PutU64(~0ULL);
  w.PutU32(12345);
  w.PutString("zombieland");
  w.PutU64(0);
  const Payload p = w.Take();

  PayloadReader r(p);
  EXPECT_EQ(r.GetU64().value(), ~0ULL);
  EXPECT_EQ(r.GetU32().value(), 12345u);
  EXPECT_EQ(r.GetString().value(), "zombieland");
  EXPECT_EQ(r.GetU64().value(), 0u);
  EXPECT_TRUE(r.AtEnd());
}

TEST(PayloadCodec, UnderrunDetected) {
  PayloadWriter w;
  w.PutU32(7);
  const Payload p = w.Take();
  PayloadReader r(p);
  EXPECT_FALSE(r.GetU64().ok());
  PayloadReader r2(p);
  // A string header larger than the remaining bytes must fail cleanly.
  EXPECT_FALSE(r2.GetString().ok());
}

}  // namespace
}  // namespace zombie::rdma
