// Tests for the GS_* control protocol over RPC-over-RDMA (wire codec,
// endpoint dispatch, client stubs) and the surplus-zombie retirement policy.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/rdma/fabric.h"
#include "src/rdma/rpc.h"
#include "src/rdma/verbs.h"
#include "src/remotemem/global_controller.h"
#include "src/remotemem/wire.h"

namespace zombie::remotemem {
namespace {

constexpr Bytes kBuff = 1 * kMiB;

std::vector<BufferGrant> MakeGrants(std::size_t n, ServerId host) {
  std::vector<BufferGrant> grants;
  for (std::size_t i = 0; i < n; ++i) {
    grants.push_back({kInvalidBuffer, 1000 + i, kBuff, host, BufferType::kZombie});
  }
  return grants;
}

// ---------------------------------------------------------------------------
// Codec round trips.
// ---------------------------------------------------------------------------

TEST(WireCodec, GrantRoundTrip) {
  BufferGrant grant{42, 777, kBuff, 9, BufferType::kActive};
  rdma::PayloadWriter writer;
  EncodeGrant(writer, grant);
  const rdma::Payload payload = writer.Take();
  rdma::PayloadReader reader(payload);
  auto decoded = DecodeGrant(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().id, 42u);
  EXPECT_EQ(decoded.value().rkey, 777u);
  EXPECT_EQ(decoded.value().size, kBuff);
  EXPECT_EQ(decoded.value().host, 9u);
  EXPECT_EQ(decoded.value().type, BufferType::kActive);
}

TEST(WireCodec, GrantTruncatedFails) {
  BufferGrant grant{1, 2, 3, 4, BufferType::kZombie};
  rdma::PayloadWriter writer;
  EncodeGrant(writer, grant);
  rdma::Payload payload = writer.Take();
  payload.resize(payload.size() - 3);
  rdma::PayloadReader reader(payload);
  EXPECT_FALSE(DecodeGrant(reader).ok());
}

TEST(WireCodec, StatusRoundTrip) {
  rdma::PayloadWriter writer;
  EncodeStatus(writer, Status(ErrorCode::kOutOfMemory, "pool dry"));
  const rdma::Payload payload = writer.Take();
  rdma::PayloadReader reader(payload);
  const Status status = DecodeStatus(reader);
  EXPECT_EQ(status.code(), ErrorCode::kOutOfMemory);
  EXPECT_EQ(status.message(), "pool dry");
}

TEST(WireCodec, BadStatusCodeRejected) {
  rdma::PayloadWriter writer;
  writer.PutU32(250);  // not a valid ErrorCode
  writer.PutString("");
  const rdma::Payload payload = writer.Take();
  rdma::PayloadReader reader(payload);
  EXPECT_EQ(DecodeStatus(reader).code(), ErrorCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Full client/endpoint stack over the fabric.
// ---------------------------------------------------------------------------

class WireTest : public ::testing::Test {
 protected:
  WireTest() : verbs_(&fabric_), router_(&verbs_), ctr_(ControllerConfig{kBuff, false}) {
    ctr_node_ = Attach("ctr");
    agent_node_ = Attach("agent");
    server_ = std::make_unique<rdma::RpcServer>(&verbs_, ctr_node_);
    endpoint_ = std::make_unique<ControllerEndpoint>(&ctr_, server_.get());
    router_.AddServer(server_.get());
    client_ = std::make_unique<ControllerClient>(&router_, agent_node_, ctr_node_);
    ctr_.RegisterServer(kHost);
    ctr_.RegisterServer(kUser);
  }

  rdma::NodeId Attach(std::string name) {
    rdma::NodePort port;
    port.name = std::move(name);
    port.can_initiate = [] { return true; };
    port.memory_accessible = [] { return true; };
    return fabric_.Attach(std::move(port));
  }

  static constexpr ServerId kHost = 1;
  static constexpr ServerId kUser = 2;
  rdma::Fabric fabric_;
  rdma::Verbs verbs_;
  rdma::RpcRouter router_;
  GlobalMemoryController ctr_;
  rdma::NodeId ctr_node_ = rdma::kInvalidNode;
  rdma::NodeId agent_node_ = rdma::kInvalidNode;
  std::unique_ptr<rdma::RpcServer> server_;
  std::unique_ptr<ControllerEndpoint> endpoint_;
  std::unique_ptr<ControllerClient> client_;
};

TEST_F(WireTest, GotoZombieOverFabric) {
  auto ids = client_->GotoZombie(kHost, MakeGrants(3, kHost));
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  EXPECT_EQ(ids.value().size(), 3u);
  EXPECT_TRUE(ctr_.IsZombie(kHost));
  EXPECT_EQ(ctr_.FreeRemoteBytes(), 3 * kBuff);
  EXPECT_GT(client_->last_cost().client, 0);
}

TEST_F(WireTest, AllocAndReleaseOverFabric) {
  ASSERT_TRUE(client_->GotoZombie(kHost, MakeGrants(3, kHost)).ok());
  auto grants = client_->AllocExt(kUser, 2 * kBuff);
  ASSERT_TRUE(grants.ok());
  ASSERT_EQ(grants.value().size(), 2u);
  EXPECT_EQ(grants.value()[0].host, kHost);
  EXPECT_EQ(grants.value()[0].type, BufferType::kZombie);
  ASSERT_TRUE(client_->Release(kUser, {grants.value()[0].id}).ok());
  EXPECT_EQ(ctr_.FreeRemoteBytes(), 2 * kBuff);
}

TEST_F(WireTest, AllocSwapBestEffortOverFabric) {
  ASSERT_TRUE(client_->GotoZombie(kHost, MakeGrants(1, kHost)).ok());
  auto grants = client_->AllocSwap(kUser, 10 * kBuff);
  ASSERT_TRUE(grants.ok());
  EXPECT_EQ(grants.value().size(), 1u);
}

TEST_F(WireTest, ErrorsTravelTheWire) {
  // Guaranteed allocation with an empty pool: the controller's OOM status
  // must surface through the RPC layer intact.
  auto grants = client_->AllocExt(kUser, kBuff);
  ASSERT_FALSE(grants.ok());
  EXPECT_EQ(grants.code(), ErrorCode::kOutOfMemory);
}

TEST_F(WireTest, ReclaimOverFabric) {
  ASSERT_TRUE(client_->GotoZombie(kHost, MakeGrants(2, kHost)).ok());
  auto reclaimed = client_->Reclaim(kHost, 2);
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_EQ(reclaimed.value().size(), 2u);
  EXPECT_FALSE(ctr_.IsZombie(kHost));
  EXPECT_EQ(ctr_.FreeRemoteBytes(), 0u);
}

TEST_F(WireTest, LruZombieOverFabric) {
  EXPECT_EQ(client_->GetLruZombie().code(), ErrorCode::kNotFound);
  ASSERT_TRUE(client_->GotoZombie(kHost, MakeGrants(1, kHost)).ok());
  auto lru = client_->GetLruZombie();
  ASSERT_TRUE(lru.ok());
  EXPECT_EQ(lru.value(), kHost);
}

TEST_F(WireTest, HeartbeatSequencesIncrease) {
  auto a = client_->Heartbeat();
  auto b = client_->Heartbeat();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b.value(), a.value());
}

// ---------------------------------------------------------------------------
// Surplus-zombie retirement (Section 4.4 deep sleep).
// ---------------------------------------------------------------------------

TEST(SurplusZombies, OnlyFullyFreeZombiesBeyondSlack) {
  GlobalMemoryController ctr(ControllerConfig{kBuff, false});
  for (ServerId s : {1u, 2u, 3u}) {
    ctr.RegisterServer(s);
  }
  ASSERT_TRUE(ctr.GsGotoZombie(1, MakeGrants(4, 1)).ok());
  ASSERT_TRUE(ctr.GsGotoZombie(2, MakeGrants(4, 2)).ok());
  // Host 1 serves an allocation; host 2 is fully free.
  ASSERT_TRUE(ctr.GsAllocExt(3, kBuff).ok());

  // Keeping >= 4 buffers of slack allows retiring host 2 only.
  const auto surplus = ctr.SurplusZombies(3 * kBuff);
  ASSERT_EQ(surplus.size(), 1u);
  EXPECT_EQ(surplus[0], 2u);
  // Requiring more slack than remains forbids retirement.
  EXPECT_TRUE(ctr.SurplusZombies(5 * kBuff).empty());
}

TEST(SurplusZombies, RetireRemovesBuffers) {
  GlobalMemoryController ctr(ControllerConfig{kBuff, false});
  ctr.RegisterServer(1);
  ctr.RegisterServer(2);
  ASSERT_TRUE(ctr.GsGotoZombie(1, MakeGrants(2, 1)).ok());
  ASSERT_TRUE(ctr.RetireZombie(1).ok());
  EXPECT_EQ(ctr.FreeRemoteBytes(), 0u);
  // Retiring a non-zombie or a serving zombie fails.
  EXPECT_EQ(ctr.RetireZombie(2).code(), ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(ctr.GsGotoZombie(2, MakeGrants(1, 2)).ok());
  ASSERT_TRUE(ctr.GsAllocExt(1, kBuff).ok());
  EXPECT_EQ(ctr.RetireZombie(2).code(), ErrorCode::kConflict);
}

}  // namespace
}  // namespace zombie::remotemem
