// Tests for the GS_* control protocol over RPC-over-RDMA (wire codec,
// endpoint dispatch, client stubs) and the surplus-zombie retirement policy.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/rdma/fabric.h"
#include "src/rdma/rpc.h"
#include "src/rdma/verbs.h"
#include "src/remotemem/global_controller.h"
#include "src/remotemem/wire.h"

namespace zombie::remotemem {
namespace {

constexpr Bytes kBuff = 1 * kMiB;

std::vector<BufferGrant> MakeGrants(std::size_t n, ServerId host) {
  std::vector<BufferGrant> grants;
  for (std::size_t i = 0; i < n; ++i) {
    grants.push_back({kInvalidBuffer, 1000 + i, kBuff, host, BufferType::kZombie});
  }
  return grants;
}

// ---------------------------------------------------------------------------
// Codec round trips.
// ---------------------------------------------------------------------------

TEST(WireCodec, GrantRoundTrip) {
  BufferGrant grant{42, 777, kBuff, 9, BufferType::kActive};
  rdma::PayloadWriter writer;
  EncodeGrant(writer, grant);
  const rdma::Payload payload = writer.Take();
  rdma::PayloadReader reader(payload);
  auto decoded = DecodeGrant(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().id, 42u);
  EXPECT_EQ(decoded.value().rkey, 777u);
  EXPECT_EQ(decoded.value().size, kBuff);
  EXPECT_EQ(decoded.value().host, 9u);
  EXPECT_EQ(decoded.value().type, BufferType::kActive);
}

TEST(WireCodec, GrantTruncatedFails) {
  BufferGrant grant{1, 2, 3, 4, BufferType::kZombie};
  rdma::PayloadWriter writer;
  EncodeGrant(writer, grant);
  rdma::Payload payload = writer.Take();
  payload.resize(payload.size() - 3);
  rdma::PayloadReader reader(payload);
  EXPECT_FALSE(DecodeGrant(reader).ok());
}

TEST(WireCodec, StatusRoundTrip) {
  rdma::PayloadWriter writer;
  EncodeStatus(writer, Status(ErrorCode::kOutOfMemory, "pool dry"));
  const rdma::Payload payload = writer.Take();
  rdma::PayloadReader reader(payload);
  const Status status = DecodeStatus(reader);
  EXPECT_EQ(status.code(), ErrorCode::kOutOfMemory);
  EXPECT_EQ(status.message(), "pool dry");
}

TEST(WireCodec, BadStatusCodeRejected) {
  rdma::PayloadWriter writer;
  writer.PutU32(250);  // not a valid ErrorCode
  writer.PutString("");
  const rdma::Payload payload = writer.Take();
  rdma::PayloadReader reader(payload);
  EXPECT_EQ(DecodeStatus(reader).code(), ErrorCode::kInvalidArgument);
}

TEST(WireCodec, PrimitiveRoundTripsIncludingBoundaryValues) {
  rdma::PayloadWriter writer;
  writer.PutU64(0);
  writer.PutU64(~0ULL);
  writer.PutU64(0x0123456789ABCDEFULL);
  writer.PutU32(0);
  writer.PutU32(0xFFFFFFFFu);
  writer.PutString("");
  writer.PutString(std::string("nul\0inside", 10));
  const rdma::Payload payload = writer.Take();
  // 3*8 + 2*4 + (4+0) + (4+10) bytes of little-endian data.
  EXPECT_EQ(payload.size(), 24u + 8u + 4u + 14u);

  rdma::PayloadReader reader(payload);
  auto a = reader.GetU64();
  auto b = reader.GetU64();
  auto c = reader.GetU64();
  auto d = reader.GetU32();
  auto e = reader.GetU32();
  auto s1 = reader.GetString();
  auto s2 = reader.GetString();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), ~0ULL);
  EXPECT_EQ(c.value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(d.value(), 0u);
  EXPECT_EQ(e.value(), 0xFFFFFFFFu);
  EXPECT_EQ(s1.value(), "");
  EXPECT_EQ(s2.value(), std::string("nul\0inside", 10));
  EXPECT_TRUE(reader.AtEnd());
}

TEST(WireCodec, PrimitiveUnderrunsRejected) {
  const rdma::Payload empty;
  {
    rdma::PayloadReader reader(empty);
    EXPECT_EQ(reader.GetU64().code(), ErrorCode::kInvalidArgument);
  }
  {
    rdma::PayloadReader reader(empty);
    EXPECT_EQ(reader.GetU32().code(), ErrorCode::kInvalidArgument);
  }
  {
    rdma::PayloadReader reader(empty);
    EXPECT_EQ(reader.GetString().code(), ErrorCode::kInvalidArgument);
  }
  // A string whose length prefix promises more bytes than remain.
  rdma::PayloadWriter writer;
  writer.PutU32(100);
  const rdma::Payload lying = writer.Take();
  rdma::PayloadReader reader(lying);
  EXPECT_EQ(reader.GetString().code(), ErrorCode::kInvalidArgument);
}

TEST(WireCodec, GrantTruncationRejectedAtEveryPrefix) {
  BufferGrant grant{42, 777, kBuff, 9, BufferType::kActive};
  rdma::PayloadWriter writer;
  EncodeGrant(writer, grant);
  const rdma::Payload full = writer.Take();
  for (std::size_t len = 0; len < full.size(); ++len) {
    rdma::Payload truncated(full.begin(), full.begin() + static_cast<long>(len));
    rdma::PayloadReader reader(truncated);
    EXPECT_FALSE(DecodeGrant(reader).ok()) << "prefix of " << len << " bytes";
  }
}

TEST(WireCodec, GrantStreamRoundTrip) {
  const std::vector<BufferGrant> grants = {
      {1, 10, kBuff, 3, BufferType::kZombie},
      {2, 20, 2 * kBuff, 4, BufferType::kActive},
      {kInvalidBuffer, rdma::kInvalidRKey, 0, kNilServer, BufferType::kZombie},
  };
  rdma::PayloadWriter writer;
  for (const auto& grant : grants) {
    EncodeGrant(writer, grant);
  }
  const rdma::Payload payload = writer.Take();
  rdma::PayloadReader reader(payload);
  for (const auto& expected : grants) {
    auto decoded = DecodeGrant(reader);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().id, expected.id);
    EXPECT_EQ(decoded.value().rkey, expected.rkey);
    EXPECT_EQ(decoded.value().size, expected.size);
    EXPECT_EQ(decoded.value().host, expected.host);
    EXPECT_EQ(decoded.value().type, expected.type);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(WireCodec, BadBufferTypeRejected) {
  rdma::PayloadWriter writer;
  writer.PutU64(1);   // id
  writer.PutU64(2);   // rkey
  writer.PutU64(3);   // size
  writer.PutU32(4);   // host
  writer.PutU32(7);   // not a valid BufferType
  const rdma::Payload payload = writer.Take();
  rdma::PayloadReader reader(payload);
  EXPECT_EQ(DecodeGrant(reader).code(), ErrorCode::kInvalidArgument);
}

TEST(WireCodec, StatusEmptyMessageRoundTrip) {
  rdma::PayloadWriter writer;
  EncodeStatus(writer, Status::Ok());
  const rdma::Payload payload = writer.Take();
  rdma::PayloadReader reader(payload);
  const Status status = DecodeStatus(reader);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.message(), "");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(WireCodec, StatusTruncatedFails) {
  rdma::PayloadWriter writer;
  EncodeStatus(writer, Status(ErrorCode::kOutOfMemory, "pool dry"));
  rdma::Payload payload = writer.Take();
  payload.resize(payload.size() - 4);  // chop into the message bytes
  rdma::PayloadReader reader(payload);
  EXPECT_EQ(DecodeStatus(reader).code(), ErrorCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Full client/endpoint stack over the fabric.
// ---------------------------------------------------------------------------

class WireTest : public ::testing::Test {
 protected:
  WireTest() : verbs_(&fabric_), router_(&verbs_), ctr_(ControllerConfig{kBuff, false}) {
    ctr_node_ = Attach("ctr");
    agent_node_ = Attach("agent");
    server_ = std::make_unique<rdma::RpcServer>(&verbs_, ctr_node_);
    endpoint_ = std::make_unique<ControllerEndpoint>(&ctr_, server_.get());
    router_.AddServer(server_.get());
    client_ = std::make_unique<ControllerClient>(&router_, agent_node_, ctr_node_);
    ctr_.RegisterServer(kHost);
    ctr_.RegisterServer(kUser);
  }

  rdma::NodeId Attach(std::string name) {
    rdma::NodePort port;
    port.name = std::move(name);
    port.can_initiate = [] { return true; };
    port.memory_accessible = [] { return true; };
    return fabric_.Attach(std::move(port));
  }

  static constexpr ServerId kHost = 1;
  static constexpr ServerId kUser = 2;
  rdma::Fabric fabric_;
  rdma::Verbs verbs_;
  rdma::RpcRouter router_;
  GlobalMemoryController ctr_;
  rdma::NodeId ctr_node_ = rdma::kInvalidNode;
  rdma::NodeId agent_node_ = rdma::kInvalidNode;
  std::unique_ptr<rdma::RpcServer> server_;
  std::unique_ptr<ControllerEndpoint> endpoint_;
  std::unique_ptr<ControllerClient> client_;
};

TEST_F(WireTest, GotoZombieOverFabric) {
  auto ids = client_->GotoZombie(kHost, MakeGrants(3, kHost));
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  EXPECT_EQ(ids.value().size(), 3u);
  EXPECT_TRUE(ctr_.IsZombie(kHost));
  EXPECT_EQ(ctr_.FreeRemoteBytes(), 3 * kBuff);
  EXPECT_GT(client_->last_cost().client, 0);
}

TEST_F(WireTest, AllocAndReleaseOverFabric) {
  ASSERT_TRUE(client_->GotoZombie(kHost, MakeGrants(3, kHost)).ok());
  auto grants = client_->AllocExt(kUser, 2 * kBuff);
  ASSERT_TRUE(grants.ok());
  ASSERT_EQ(grants.value().size(), 2u);
  EXPECT_EQ(grants.value()[0].host, kHost);
  EXPECT_EQ(grants.value()[0].type, BufferType::kZombie);
  ASSERT_TRUE(client_->Release(kUser, {grants.value()[0].id}).ok());
  EXPECT_EQ(ctr_.FreeRemoteBytes(), 2 * kBuff);
}

TEST_F(WireTest, AllocSwapBestEffortOverFabric) {
  ASSERT_TRUE(client_->GotoZombie(kHost, MakeGrants(1, kHost)).ok());
  auto grants = client_->AllocSwap(kUser, 10 * kBuff);
  ASSERT_TRUE(grants.ok());
  EXPECT_EQ(grants.value().size(), 1u);
}

TEST_F(WireTest, ErrorsTravelTheWire) {
  // Guaranteed allocation with an empty pool: the controller's OOM status
  // must surface through the RPC layer intact.
  auto grants = client_->AllocExt(kUser, kBuff);
  ASSERT_FALSE(grants.ok());
  EXPECT_EQ(grants.code(), ErrorCode::kOutOfMemory);
}

TEST_F(WireTest, ReclaimOverFabric) {
  ASSERT_TRUE(client_->GotoZombie(kHost, MakeGrants(2, kHost)).ok());
  auto reclaimed = client_->Reclaim(kHost, 2);
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_EQ(reclaimed.value().size(), 2u);
  EXPECT_FALSE(ctr_.IsZombie(kHost));
  EXPECT_EQ(ctr_.FreeRemoteBytes(), 0u);
}

TEST_F(WireTest, LruZombieOverFabric) {
  EXPECT_EQ(client_->GetLruZombie().code(), ErrorCode::kNotFound);
  ASSERT_TRUE(client_->GotoZombie(kHost, MakeGrants(1, kHost)).ok());
  auto lru = client_->GetLruZombie();
  ASSERT_TRUE(lru.ok());
  EXPECT_EQ(lru.value(), kHost);
}

TEST_F(WireTest, HeartbeatSequencesIncrease) {
  auto a = client_->Heartbeat();
  auto b = client_->Heartbeat();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b.value(), a.value());
}

// ---------------------------------------------------------------------------
// Surplus-zombie retirement (Section 4.4 deep sleep).
// ---------------------------------------------------------------------------

TEST(SurplusZombies, OnlyFullyFreeZombiesBeyondSlack) {
  GlobalMemoryController ctr(ControllerConfig{kBuff, false});
  for (ServerId s : {1u, 2u, 3u}) {
    ctr.RegisterServer(s);
  }
  ASSERT_TRUE(ctr.GsGotoZombie(1, MakeGrants(4, 1)).ok());
  ASSERT_TRUE(ctr.GsGotoZombie(2, MakeGrants(4, 2)).ok());
  // Host 1 serves an allocation; host 2 is fully free.
  ASSERT_TRUE(ctr.GsAllocExt(3, kBuff).ok());

  // Keeping >= 4 buffers of slack allows retiring host 2 only.
  const auto surplus = ctr.SurplusZombies(3 * kBuff);
  ASSERT_EQ(surplus.size(), 1u);
  EXPECT_EQ(surplus[0], 2u);
  // Requiring more slack than remains forbids retirement.
  EXPECT_TRUE(ctr.SurplusZombies(5 * kBuff).empty());
}

TEST(SurplusZombies, RetireRemovesBuffers) {
  GlobalMemoryController ctr(ControllerConfig{kBuff, false});
  ctr.RegisterServer(1);
  ctr.RegisterServer(2);
  ASSERT_TRUE(ctr.GsGotoZombie(1, MakeGrants(2, 1)).ok());
  ASSERT_TRUE(ctr.RetireZombie(1).ok());
  EXPECT_EQ(ctr.FreeRemoteBytes(), 0u);
  // Retiring a non-zombie or a serving zombie fails.
  EXPECT_EQ(ctr.RetireZombie(2).code(), ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(ctr.GsGotoZombie(2, MakeGrants(1, 2)).ok());
  ASSERT_TRUE(ctr.GsAllocExt(1, kBuff).ok());
  EXPECT_EQ(ctr.RetireZombie(2).code(), ErrorCode::kConflict);
}

}  // namespace
}  // namespace zombie::remotemem
