// Unit tests for the zombie-lint engine (tools/lint/lint.h): the rule
// registry, the comment/string scrubber, the suppression grammar, and
// RunLint over the fixture mini-trees in tests/lint_fixtures/.
//
// Every lint-sensitive token in this file (suppression markers, violation
// shapes) lives inside string literals: the scrubber blanks literals before
// any rule or the suppression parser runs, so this file stays clean when the
// real tree is scanned — and that property is itself pinned below.
#include "tools/lint/lint.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#ifndef ZOMBIE_LINT_FIXTURES
#error "the build must define ZOMBIE_LINT_FIXTURES=<path to tests/lint_fixtures>"
#endif

namespace zombie::lint {
namespace {

LintResult LintFixtureTree(const std::string& tree,
                           const Options& extra = Options{}) {
  Options options = extra;
  options.root = std::string(ZOMBIE_LINT_FIXTURES) + "/" + tree;
  return RunLint(options);
}

bool HasFinding(const LintResult& result, std::string_view rule,
                std::string_view file) {
  return std::any_of(result.findings.begin(), result.findings.end(),
                     [&](const Finding& f) {
                       return f.rule == rule && (file.empty() || f.file == file);
                     });
}

// ---------------------------------------------------------------------------
// Rule registry.
// ---------------------------------------------------------------------------

TEST(LintRegistry, RulesAreUniquelyNamedWithRationales) {
  const auto& rules = Rules();
  ASSERT_FALSE(rules.empty());
  std::set<std::string_view> names;
  for (const RuleInfo& rule : rules) {
    EXPECT_TRUE(names.insert(rule.name).second)
        << "duplicate rule name: " << rule.name;
    EXPECT_FALSE(rule.rationale.empty()) << "rule without rationale: " << rule.name;
    // The tree is kept clean, so every rule defaults to blocking severity.
    EXPECT_EQ(rule.severity, Severity::kError) << "non-error default: " << rule.name;
  }
}

TEST(LintRegistry, FindRuleRoundTripsAndRejectsUnknown) {
  for (const RuleInfo& rule : Rules()) {
    const RuleInfo* found = FindRule(rule.name);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->name, rule.name);
  }
  EXPECT_EQ(FindRule("not-a-rule"), nullptr);
  EXPECT_EQ(FindRule(""), nullptr);
}

TEST(LintRegistry, SeverityNamesParseBothWays) {
  Severity severity = Severity::kError;
  EXPECT_TRUE(ParseSeverity("off", &severity));
  EXPECT_EQ(severity, Severity::kOff);
  EXPECT_TRUE(ParseSeverity("warning", &severity));
  EXPECT_EQ(severity, Severity::kWarning);
  EXPECT_TRUE(ParseSeverity("error", &severity));
  EXPECT_EQ(severity, Severity::kError);
  EXPECT_FALSE(ParseSeverity("fatal", &severity));
  EXPECT_EQ(SeverityName(Severity::kOff), "off");
  EXPECT_EQ(SeverityName(Severity::kWarning), "warning");
  EXPECT_EQ(SeverityName(Severity::kError), "error");
}

// ---------------------------------------------------------------------------
// Scrubber: literals and comments must be invisible to the rules.
// ---------------------------------------------------------------------------

TEST(LintScrubber, BlanksCommentsIntoTheCommentStream) {
  const SourceFile file =
      ScrubSource("src/f.cc", "int a;  // trailing rand() bait\nint b;\n");
  ASSERT_EQ(file.code.size(), 3u);  // two lines + empty tail after final \n
  EXPECT_EQ(file.code[0].find("rand"), std::string::npos);
  EXPECT_NE(file.code[0].find("int a;"), std::string::npos);
  EXPECT_NE(file.comments[0].find("rand() bait"), std::string::npos);
}

TEST(LintScrubber, BlanksStringAndCharLiterals) {
  const SourceFile file = ScrubSource(
      "src/f.cc", "const char* s = \"new int rand( steady_clock\";\nchar c = 'n';\n");
  EXPECT_EQ(file.code[0].find("new"), std::string::npos);
  EXPECT_EQ(file.code[0].find("rand"), std::string::npos);
  EXPECT_EQ(file.code[0].find("steady_clock"), std::string::npos);
  // The delimiters survive so column positions stay stable.
  EXPECT_NE(file.code[0].find('"'), std::string::npos);
  EXPECT_EQ(file.code[1].find('n'), std::string::npos);
}

TEST(LintScrubber, BlanksRawStringsAcrossLines) {
  const std::string text =
      "auto s = R\"(line one new int(3)\nline two rand()\n)\";\nint tail;\n";
  const SourceFile file = ScrubSource("src/f.cc", text);
  EXPECT_EQ(file.code[0].find("new"), std::string::npos);
  EXPECT_EQ(file.code[1].find("rand"), std::string::npos);
  EXPECT_NE(file.code[3].find("int tail;"), std::string::npos);
}

TEST(LintScrubber, EscapedQuoteDoesNotEndTheLiteral) {
  const SourceFile file =
      ScrubSource("src/f.cc", "const char* s = \"a \\\" rand( b\"; int x;\n");
  EXPECT_EQ(file.code[0].find("rand"), std::string::npos);
  EXPECT_NE(file.code[0].find("int x;"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Suppression grammar.
// ---------------------------------------------------------------------------

TEST(LintSuppressions, MarkerOnOwnLineCoversTheNextLine) {
  const SourceFile file = ScrubSource(
      "src/f.cc", "// ZLINT-ALLOW(naked-new): fixture reason\nint* p = new int(1);\n");
  EXPECT_TRUE(file.LineAllowed("naked-new", 1));
  EXPECT_TRUE(file.LineAllowed("naked-new", 2));
  EXPECT_FALSE(file.LineAllowed("naked-new", 3));
  EXPECT_FALSE(file.LineAllowed("printf-family", 2));
  EXPECT_TRUE(file.allow_findings.empty());
}

TEST(LintSuppressions, SameLineMarkerCoversOnlyThatLine) {
  const SourceFile file = ScrubSource(
      "src/f.cc",
      "int* p = new int(1);  // ZLINT-ALLOW(naked-new): fixture reason\nint* q = new int(2);\n");
  EXPECT_TRUE(file.LineAllowed("naked-new", 1));
  EXPECT_FALSE(file.LineAllowed("naked-new", 2));
}

TEST(LintSuppressions, FileWideMarkerCoversEveryLine) {
  const SourceFile file = ScrubSource(
      "src/f.cc",
      "// ZLINT-ALLOW-FILE(printf-family): fixture reason\nvoid f();\nvoid g();\n");
  EXPECT_TRUE(file.LineAllowed("printf-family", 1));
  EXPECT_TRUE(file.LineAllowed("printf-family", 42));
  EXPECT_FALSE(file.LineAllowed("naked-new", 2));
}

TEST(LintSuppressions, MissingReasonIsItselfAFinding) {
  const SourceFile no_colon =
      ScrubSource("src/f.cc", "// ZLINT-ALLOW(naked-new)\nint* p = new int(1);\n");
  ASSERT_EQ(no_colon.allow_findings.size(), 1u);
  EXPECT_EQ(no_colon.allow_findings[0].rule, "allow-missing-reason");
  EXPECT_FALSE(no_colon.LineAllowed("naked-new", 2));  // not registered

  const SourceFile blank_reason =
      ScrubSource("src/f.cc", "// ZLINT-ALLOW(naked-new):   \nint* p = new int(1);\n");
  ASSERT_EQ(blank_reason.allow_findings.size(), 1u);
  EXPECT_EQ(blank_reason.allow_findings[0].rule, "allow-missing-reason");
}

TEST(LintSuppressions, UnknownRuleIsItselfAFinding) {
  const SourceFile file =
      ScrubSource("src/f.cc", "// ZLINT-ALLOW(not-a-rule): some reason\n");
  ASSERT_EQ(file.allow_findings.size(), 1u);
  EXPECT_EQ(file.allow_findings[0].rule, "allow-unknown-rule");
  EXPECT_EQ(file.allow_findings[0].line, 1u);
}

TEST(LintSuppressions, MarkerInsideStringLiteralIsIgnored) {
  // This is the property that lets this very file talk about suppressions:
  // a marker inside a string literal is scrubbed before parsing.
  const SourceFile file = ScrubSource(
      "src/f.cc", "const char* s = \"// ZLINT-ALLOW(naked-new): nope\";\n");
  EXPECT_TRUE(file.allow_lines.empty());
  EXPECT_TRUE(file.allow_findings.empty());
}

// ---------------------------------------------------------------------------
// Formatting.
// ---------------------------------------------------------------------------

TEST(LintFormat, FindingRendersAsFileLineSeverityRule) {
  const Finding finding{"src/a.cc", 3, "naked-new", Severity::kError, "boom"};
  EXPECT_EQ(FormatFinding(finding), "src/a.cc:3: error[naked-new]: boom");
}

// ---------------------------------------------------------------------------
// RunLint over the fixture mini-trees.
// ---------------------------------------------------------------------------

TEST(LintFixtures, ViolationsTreeHitsEveryRegisteredRule) {
  const LintResult result = LintFixtureTree("violations");
  EXPECT_TRUE(result.io_errors.empty());
  for (const RuleInfo& rule : Rules()) {
    EXPECT_TRUE(HasFinding(result, rule.name, ""))
        << "no fixture finding for rule: " << rule.name;
  }
}

TEST(LintFixtures, ViolationFilesAreNamedAfterTheirRule) {
  const LintResult result = LintFixtureTree("violations");
  EXPECT_TRUE(HasFinding(result, "wall-clock", "src/wall_clock.cc"));
  EXPECT_TRUE(HasFinding(result, "libc-rand", "src/libc_rand.cc"));
  EXPECT_TRUE(HasFinding(result, "unseeded-mt19937", "src/unseeded_mt19937.cc"));
  EXPECT_TRUE(HasFinding(result, "unordered-iter", "src/unordered_iter.cc"));
  EXPECT_TRUE(HasFinding(result, "nodiscard-fallible", "src/fallible.h"));
  EXPECT_TRUE(HasFinding(result, "scenario-registration",
                         "src/scenario_registration.cc"));
  EXPECT_TRUE(HasFinding(result, "naked-new", "src/naked_new.cc"));
  EXPECT_TRUE(HasFinding(result, "printf-family", "src/printf_family.cc"));
  EXPECT_TRUE(HasFinding(result, "allow-missing-reason",
                         "src/allow_missing_reason.cc"));
  EXPECT_TRUE(HasFinding(result, "allow-unknown-rule",
                         "src/allow_unknown_rule.cc"));
}

TEST(LintFixtures, IncludeSelfcheckNamesTheMissingHeader) {
  const LintResult result = LintFixtureTree("violations");
  const auto it = std::find_if(
      result.findings.begin(), result.findings.end(),
      [](const Finding& f) { return f.rule == "include-selfcheck"; });
  ASSERT_NE(it, result.findings.end());
  // Anchored on the selfcheck TU as a whole-file finding, naming the header.
  EXPECT_EQ(it->file, "tests/include_selfcheck.cc");
  EXPECT_EQ(it->line, 0u);
  EXPECT_NE(it->message.find("src/missing.h"), std::string::npos);
}

TEST(LintFixtures, FindingsAreSortedByFileLineRule) {
  const LintResult result = LintFixtureTree("violations");
  const bool sorted = std::is_sorted(
      result.findings.begin(), result.findings.end(),
      [](const Finding& a, const Finding& b) {
        if (a.file != b.file) return a.file < b.file;
        if (a.line != b.line) return a.line < b.line;
        return a.rule < b.rule;
      });
  EXPECT_TRUE(sorted);
}

TEST(LintFixtures, CleanTreeHasNoFindings) {
  const LintResult result = LintFixtureTree("clean");
  EXPECT_TRUE(result.io_errors.empty());
  EXPECT_EQ(result.files_scanned, 3u);  // clean.h, clean.cc, include_selfcheck.cc
  EXPECT_TRUE(result.findings.empty())
      << "unexpected finding: "
      << (result.findings.empty() ? "" : FormatFinding(result.findings[0]));
}

TEST(LintFixtures, SuppressedTreeHasNoFindings) {
  const LintResult result = LintFixtureTree("suppressed");
  EXPECT_TRUE(result.io_errors.empty());
  EXPECT_TRUE(result.findings.empty())
      << "unexpected finding: "
      << (result.findings.empty() ? "" : FormatFinding(result.findings[0]));
}

TEST(LintFixtures, SeverityOverrideOffDropsTheRule) {
  Options options;
  options.severity_overrides["naked-new"] = Severity::kOff;
  const LintResult result = LintFixtureTree("violations", options);
  EXPECT_FALSE(HasFinding(result, "naked-new", ""));
  EXPECT_TRUE(HasFinding(result, "printf-family", ""));  // others unaffected
}

TEST(LintFixtures, SeverityOverrideWarningDemotesTheRule) {
  Options options;
  options.severity_overrides["naked-new"] = Severity::kWarning;
  const LintResult result = LintFixtureTree("violations", options);
  bool saw = false;
  for (const Finding& f : result.findings) {
    if (f.rule == "naked-new") {
      saw = true;
      EXPECT_EQ(f.severity, Severity::kWarning);
    }
  }
  EXPECT_TRUE(saw);
}

TEST(LintFixtures, ExplicitFilePathScansJustThatFile) {
  Options options;
  options.paths = {"src/naked_new.cc"};
  const LintResult result = LintFixtureTree("violations", options);
  EXPECT_EQ(result.files_scanned, 1u);
  EXPECT_TRUE(HasFinding(result, "naked-new", "src/naked_new.cc"));
  // Partial scans must not fabricate include-selfcheck noise.
  EXPECT_FALSE(HasFinding(result, "include-selfcheck", ""));
}

TEST(LintFixtures, BadRootIsAnIoErrorNotAFinding) {
  Options options;
  options.root = std::string(ZOMBIE_LINT_FIXTURES) + "/no-such-tree";
  const LintResult result = RunLint(options);
  EXPECT_FALSE(result.io_errors.empty());
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.files_scanned, 0u);
}

TEST(LintFixtures, MissingPathUnderGoodRootIsAnIoError) {
  Options options;
  options.paths = {"src/does_not_exist.cc"};
  const LintResult result = LintFixtureTree("violations", options);
  EXPECT_FALSE(result.io_errors.empty());
}

}  // namespace
}  // namespace zombie::lint
