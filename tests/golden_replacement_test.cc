// Golden-sequence regression tests for the replacement policies and the
// pager pipeline.
//
// The victim orders and PagerStats below were recorded from the original
// std::list + std::unordered_map implementation (PR 1 tree) on fixed seeds.
// The intrusive-list reimplementation must reproduce them bit-for-bit: any
// deviation means the refactor changed simulated results, not just speed.
//
// To re-record after an *intentional* behaviour change, run with
// ZOMBIE_GOLDEN_PRINT=1 and paste the printed blocks over the constants.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/common/rng.h"
#include "src/hv/backend.h"
#include "src/hv/pager.h"
#include "src/hv/replacement.h"
#include "src/workloads/access_pattern.h"

namespace zombie::hv {
namespace {

bool PrintMode() {
  const char* env = std::getenv("ZOMBIE_GOLDEN_PRINT");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::uint64_t HashMix(std::uint64_t h, std::uint64_t v) {
  // FNV-1a over the 8 bytes of v.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Policy-level goldens: a deterministic driver that exercises OnPageIn,
// PickVictim and OnPageGone the way HostPager does, on a fixed Rng stream.
// ---------------------------------------------------------------------------

struct DriveResult {
  std::vector<PageIndex> first_victims;  // first 24 victim pages, in order
  std::uint64_t victim_hash = 1469598103934665603ULL;  // over (page, cycles)
  std::uint64_t victims = 0;
  Cycles cycles_total = 0;
};

DriveResult DrivePolicy(PolicyKind kind, std::uint64_t seed) {
  constexpr std::uint64_t kPages = 96;
  constexpr std::uint64_t kFrames = 24;
  constexpr std::uint64_t kSteps = 20'000;
  PagingParams params;
  auto policy = MakePolicy(kind, params, /*mixed_depth=*/5);
  GuestPageTable table(kPages);
  std::uint64_t free_frames = kFrames;
  std::uint64_t since_clear = 0;
  Rng rng(seed);
  DriveResult out;
  for (std::uint64_t step = 0; step < kSteps; ++step) {
    const PageIndex page = rng.NextBelow(kPages);
    if (++since_clear >= 256) {
      table.ClearAccessedBits();
      since_clear = 0;
    }
    PageTableEntry& entry = table.at(page);
    if (!entry.present) {
      if (free_frames == 0) {
        const VictimChoice choice = policy->PickVictim(table);
        table.at(choice.page).present = false;
        ++free_frames;
        out.victim_hash = HashMix(out.victim_hash, choice.page);
        out.victim_hash = HashMix(out.victim_hash, static_cast<std::uint64_t>(choice.cycles));
        if (out.first_victims.size() < 24) {
          out.first_victims.push_back(choice.page);
        }
        ++out.victims;
        out.cycles_total += choice.cycles;
      }
      entry.present = true;
      --free_frames;
      policy->OnPageIn(page);
    }
    table.SetAccessed(entry);
    // Every 97 steps a present page vanishes outside the policy's choice
    // (the OnPageGone path a migration or free would take).
    if (step % 97 == 96) {
      const PageIndex gone = rng.NextBelow(kPages);
      PageTableEntry& g = table.at(gone);
      if (g.present) {
        g.present = false;
        ++free_frames;
        policy->OnPageGone(gone);
      }
    }
  }
  return out;
}

struct PolicyGolden {
  PolicyKind kind;
  std::uint64_t seed;
  std::vector<PageIndex> first_victims;
  std::uint64_t victim_hash;
  std::uint64_t victims;
  Cycles cycles_total;
};

void CheckPolicyGolden(const PolicyGolden& golden) {
  const DriveResult got = DrivePolicy(golden.kind, golden.seed);
  if (PrintMode()) {
    std::printf("{PolicyKind::k%s, %lluu,\n {", std::string(PolicyKindName(golden.kind)).c_str(),
                static_cast<unsigned long long>(golden.seed));
    for (std::size_t i = 0; i < got.first_victims.size(); ++i) {
      std::printf("%s%llu", i == 0 ? "" : ", ",
                  static_cast<unsigned long long>(got.first_victims[i]));
    }
    std::printf("},\n %lluULL, %llu, %lld},\n",
                static_cast<unsigned long long>(got.victim_hash),
                static_cast<unsigned long long>(got.victims),
                static_cast<long long>(got.cycles_total));
    return;
  }
  EXPECT_EQ(got.first_victims, golden.first_victims);
  EXPECT_EQ(got.victim_hash, golden.victim_hash);
  EXPECT_EQ(got.victims, golden.victims);
  EXPECT_EQ(got.cycles_total, golden.cycles_total);
}

// Recorded from the pre-intrusive-list implementation; see file comment.
const PolicyGolden kPolicyGoldens[] = {
    {PolicyKind::kFifo, 1u,
     {67, 49, 55, 37, 66, 13, 6, 36, 83, 52, 89, 91, 64, 57, 85, 7, 47, 4, 44, 58, 33, 38, 20,
      82},
     9544292901908832370ULL, 14944, 2017440},
    {PolicyKind::kClock, 1u,
     {67, 49, 55, 37, 66, 13, 6, 36, 83, 52, 89, 91, 64, 57, 85, 7, 47, 4, 44, 58, 33, 38, 20,
      82},
     9325845160125053839ULL, 14941, 22014817},
    {PolicyKind::kMixed, 1u,
     {13, 91, 4, 82, 67, 49, 55, 66, 6, 83, 52, 89, 64, 57, 85, 7, 44, 58, 33, 38, 37, 72, 36,
      94},
     7144318507085973802ULL, 14955, 3247308},
    {PolicyKind::kFifo, 2024u,
     {5, 75, 6, 15, 74, 23, 37, 24, 53, 4, 69, 89, 84, 35, 18, 62, 77, 38, 29, 40, 46, 0, 48,
      49},
     12805920840977980812ULL, 14858, 2005830},
    {PolicyKind::kClock, 2024u,
     {5, 75, 6, 15, 74, 23, 37, 24, 53, 4, 69, 89, 84, 35, 18, 62, 77, 38, 29, 40, 46, 0, 48,
      49},
     12795778571483366709ULL, 14859, 21818213},
    {PolicyKind::kMixed, 2024u,
     {23, 89, 38, 49, 75, 6, 15, 74, 37, 24, 53, 4, 35, 18, 62, 77, 29, 40, 46, 0, 48, 5, 56,
      92},
     2093179982937903028ULL, 14818, 3224309},
};

TEST(GoldenReplacement, VictimSequencesMatchRecorded) {
  for (const auto& golden : kPolicyGoldens) {
    SCOPED_TRACE(std::string(PolicyKindName(golden.kind)) + "/seed=" +
                 std::to_string(golden.seed));
    CheckPolicyGolden(golden);
  }
}

// ---------------------------------------------------------------------------
// Pipeline-level goldens: AccessPattern -> HostPager on a canned stream.
// ---------------------------------------------------------------------------

struct StatsGolden {
  PolicyKind kind;
  std::uint64_t faults;
  std::uint64_t major_faults;
  std::uint64_t evictions;
  std::uint64_t writebacks;
  Cycles policy_cycles;
  Duration total_cost;
};

workloads::AccessPattern CannedPattern() {
  workloads::PatternParams params;
  params.tiers = {{0.25, 0.45, false}, {0.7, 0.25, true}};
  params.zipf_weight = 0.2;
  params.zipf_theta = 0.85;
  params.write_ratio = 0.3;
  return workloads::AccessPattern(/*footprint_pages=*/2048, params, /*seed=*/7);
}

constexpr std::uint64_t kStatsAccesses = 200'000;

PagerStats RunCannedStream(PolicyKind kind) {
  DeviceBackend backend("golden-dev", DeviceLatency{10 * kMicrosecond, 8 * kMicrosecond});
  PagingParams params;
  HostPager pager(2048, /*local_frames=*/512, MakePolicy(kind, params, 5), &backend, params);
  workloads::AccessPattern pattern = CannedPattern();
  for (std::uint64_t i = 0; i < kStatsAccesses; ++i) {
    const workloads::PageAccess access = pattern.Next();
    EXPECT_TRUE(pager.Access(access.page, access.is_write).ok());
  }
  return pager.stats();
}

void CheckStatsGolden(const StatsGolden& golden, const PagerStats& got) {
  if (PrintMode()) {
    std::printf("{PolicyKind::k%s, %lluu, %lluu, %lluu, %lluu, %lld, %lld},\n",
                std::string(PolicyKindName(golden.kind)).c_str(),
                static_cast<unsigned long long>(got.faults),
                static_cast<unsigned long long>(got.major_faults),
                static_cast<unsigned long long>(got.evictions),
                static_cast<unsigned long long>(got.writebacks),
                static_cast<long long>(got.policy_cycles),
                static_cast<long long>(got.total_cost));
    return;
  }
  EXPECT_EQ(got.accesses, kStatsAccesses);
  EXPECT_EQ(got.faults, golden.faults);
  EXPECT_EQ(got.major_faults, golden.major_faults);
  EXPECT_EQ(got.evictions, golden.evictions);
  EXPECT_EQ(got.writebacks, golden.writebacks);
  EXPECT_EQ(got.policy_cycles, golden.policy_cycles);
  EXPECT_EQ(got.total_cost, golden.total_cost);
}

// Recorded from the pre-intrusive-list implementation; see file comment.
const StatsGolden kStatsGoldens[] = {
    {PolicyKind::kFifo, 144926u, 142878u, 144414u, 51832u, 19495890, 2358190430},
    {PolicyKind::kClock, 144206u, 142158u, 143694u, 51557u, 1876218030, 2965269811},
    {PolicyKind::kMixed, 141861u, 139813u, 141349u, 50665u, 27555171, 2310695709},
};

TEST(GoldenReplacement, PagerStatsMatchRecorded) {
  for (const auto& golden : kStatsGoldens) {
    SCOPED_TRACE(std::string(PolicyKindName(golden.kind)));
    CheckStatsGolden(golden, RunCannedStream(golden.kind));
  }
}

}  // namespace
}  // namespace zombie::hv
