// Tests for the per-point scenario result cache: file round trips, the
// corrupt-entry-degrades-to-miss contract, cell-capture/replay through
// ForEachSweepPoint, and the end-to-end guarantee that a warm run renders a
// byte-identical report without invoking any point function.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/report.h"
#include "src/scenario/point_cache.h"
#include "src/scenario/scenario.h"

namespace zombie::scenario {
namespace {

using report::Report;

std::string TempCacheDir(const char* tag) {
  // Per-test directory under the build tree's cwd; tests may run in
  // parallel, so the tag keeps them apart.
  std::string dir = std::string(".point-cache-test-") + tag;
  return dir;
}

void RemoveDir(const std::string& dir) {
  // Best-effort cleanup of the handful of files the tests create.
  const std::string cmd = "rm -rf '" + dir + "'";
  (void)std::system(cmd.c_str());
}

TEST(PointCacheTest, StoreThenLoadRoundTripsMetricsAndCells) {
  const std::string dir = TempCacheDir("roundtrip");
  RemoveDir(dir);
  PointCache cache(dir);
  CachedPoint stored;
  stored.metrics = {{"faults", 123.0}, {"sim_cost_seconds", 0.25}};
  stored.cells = {{0, 1, 2, "12.34"}, {2, 0, 0, "inf"}};
  cache.Store("swept-abc", stored);

  CachedPoint loaded;
  ASSERT_TRUE(cache.Load("swept-abc", &loaded));
  ASSERT_EQ(loaded.metrics.size(), 2u);
  EXPECT_EQ(loaded.metrics[0].first, "faults");
  EXPECT_EQ(loaded.metrics[0].second, 123.0);
  EXPECT_EQ(loaded.metrics[1].first, "sim_cost_seconds");
  EXPECT_EQ(loaded.metrics[1].second, 0.25);  // exact: JsonNumber round trip
  ASSERT_EQ(loaded.cells.size(), 2u);
  EXPECT_EQ(loaded.cells[0].table, 0u);
  EXPECT_EQ(loaded.cells[0].row, 1u);
  EXPECT_EQ(loaded.cells[0].column, 2u);
  EXPECT_EQ(loaded.cells[0].value, "12.34");
  EXPECT_EQ(loaded.cells[1].value, "inf");
  RemoveDir(dir);
}

TEST(PointCacheTest, MissingCorruptAndWrongSchemaFilesAreMisses) {
  const std::string dir = TempCacheDir("corrupt");
  RemoveDir(dir);
  PointCache cache(dir);
  CachedPoint out;
  EXPECT_FALSE(cache.Load("never-stored", &out));

  cache.Store("entry", {});
  ASSERT_TRUE(cache.Load("entry", &out));

  // Truncate the file mid-document: must degrade to a miss, not an error.
  const std::string path = dir + "/entry.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"schema\":\"zombieland.point-ca", f);
  std::fclose(f);
  EXPECT_FALSE(cache.Load("entry", &out));

  // Valid JSON, wrong schema: also a miss.
  f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"schema\":\"something-else/v9\",\"metrics\":{},\"cells\":[]}", f);
  std::fclose(f);
  EXPECT_FALSE(cache.Load("entry", &out));
  RemoveDir(dir);
}

TEST(PointCacheTest, KeyHashIsStableAndInputSensitive) {
  const std::string a = PointCache::HashKeyText("fig08\nsmoke");
  EXPECT_EQ(a, PointCache::HashKeyText("fig08\nsmoke"));
  EXPECT_NE(a, PointCache::HashKeyText("fig08\nfull"));
  EXPECT_EQ(a.size(), 16u);  // FNV-64 hex
  // The binary fingerprint is part of every real key: non-empty and stable
  // within a process.
  EXPECT_FALSE(PointCache::BinaryFingerprint().empty());
  EXPECT_EQ(PointCache::BinaryFingerprint(), PointCache::BinaryFingerprint());
}

TEST(PointCacheTest, ReplayRejectsCellsOutsideTheGrid) {
  Report r("s", "t");
  auto grid = r.AddSweepTable("g", "", "row", {"a", "b"}, {"x", "y"});
  grid.Set(0, 0, "seed");
  EXPECT_TRUE(r.CellInGrid({0, 1, 1, "ok"}));
  EXPECT_TRUE(r.ApplySweepCell({0, 1, 1, "ok"}));
  EXPECT_FALSE(r.CellInGrid({0, 2, 0, "row oob"}));
  EXPECT_FALSE(r.CellInGrid({0, 0, 2, "col oob"}));
  EXPECT_FALSE(r.CellInGrid({1, 0, 0, "table oob"}));
  EXPECT_FALSE(r.ApplySweepCell({1, 0, 0, "table oob"}));
}

// ---------------------------------------------------------------------------
// End to end through ForEachSweepPoint.
// ---------------------------------------------------------------------------

ScenarioSpec CacheableSpec() {
  ScenarioSpec spec;
  spec.name = "cached_sweep";
  spec.title = "t";
  spec.params = {{"policy", ParamType::kString, "", "", {}, {}},
                 {"fraction", ParamType::kDouble, "", "", {}, {}}};
  spec.sweep = {SweepMode::kCross,
                {{"policy", {"FIFO", "Mixed"}}, {"fraction", {"0.2", "0.8"}}}};
  spec.cacheable_points = true;
  return spec;
}

std::string RenderSweep(const ScenarioSpec& spec, PointCache* cache,
                        std::atomic<int>* runs) {
  RunOptions options;
  options.point_cache = cache;
  RunContext ctx(spec, options);
  Report r(spec.name, spec.title);
  auto grid = r.AddSweepTable("g", "", "fraction", {"0.2", "0.8"}, {"FIFO", "Mixed"});
  ctx.ForEachSweepPoint(r, [&](const SweepPoint& pt, report::SweepPointRecord& rec) {
    runs->fetch_add(1);
    grid.Set(pt.AxisIndex("fraction"), pt.AxisIndex("policy"),
             pt.Value("policy") + "@" + pt.Value("fraction"));
    rec.Metric("fraction", pt.Double("fraction"));
    rec.Metric("index", static_cast<double>(pt.index()));
  });
  return r.RenderJson();
}

TEST(PointCacheTest, WarmRunReplaysWithoutInvokingPointsByteIdentically) {
  const std::string dir = TempCacheDir("endtoend");
  RemoveDir(dir);
  const ScenarioSpec spec = CacheableSpec();
  PointCache cache(dir);
  std::atomic<int> runs{0};
  const std::string cold = RenderSweep(spec, &cache, &runs);
  EXPECT_EQ(runs.load(), 4);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 4u);

  const std::string warm = RenderSweep(spec, &cache, &runs);
  EXPECT_EQ(runs.load(), 4) << "warm run must not invoke any point function";
  EXPECT_EQ(cache.hits(), 4u);
  EXPECT_EQ(warm, cold);

  // No cache pointer: the same sweep runs fresh and renders the same bytes.
  std::atomic<int> uncached_runs{0};
  EXPECT_EQ(RenderSweep(spec, nullptr, &uncached_runs), cold);
  EXPECT_EQ(uncached_runs.load(), 4);
  RemoveDir(dir);
}

TEST(PointCacheTest, CacheIsIgnoredWithoutTheCacheablePointsOptIn) {
  const std::string dir = TempCacheDir("optout");
  RemoveDir(dir);
  ScenarioSpec spec = CacheableSpec();
  spec.cacheable_points = false;
  PointCache cache(dir);
  std::atomic<int> runs{0};
  RenderSweep(spec, &cache, &runs);
  RenderSweep(spec, &cache, &runs);
  EXPECT_EQ(runs.load(), 8) << "both runs must execute every point";
  EXPECT_EQ(cache.hits() + cache.misses(), 0u);
  RemoveDir(dir);
}

}  // namespace
}  // namespace zombie::scenario
