// Unit tests for the common substrate: units, result, clock, event queue,
// rng, stats, table.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/event_queue.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/sim_clock.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/units.h"

namespace zombie {
namespace {

// ---------------------------------------------------------------------------
// Units.
// ---------------------------------------------------------------------------

TEST(Units, TimeConversions) {
  EXPECT_EQ(kSecond, 1'000'000'000);
  EXPECT_DOUBLE_EQ(ToSeconds(2 * kSecond + 500 * kMillisecond), 2.5);
  EXPECT_EQ(FromSeconds(1.5), kSecond + 500 * kMillisecond);
}

TEST(Units, PageArithmetic) {
  EXPECT_EQ(PagesOf(1 * kMiB), 256u);
  EXPECT_EQ(PagesToBytes(256), 1 * kMiB);
  EXPECT_EQ(PagesOf(kPageSize - 1), 0u);
}

TEST(Units, EnergyIntegration) {
  // 100 W for 10 s = 1000 J = 1,000,000 mJ.
  EXPECT_EQ(EnergyOf(WattsToMw(100.0), 10 * kSecond), 1'000'000);
  EXPECT_DOUBLE_EQ(MjToJoules(1'000'000), 1000.0);
}

TEST(Units, CycleConversionRoundTrips) {
  EXPECT_EQ(CyclesToDuration(kCyclesPerNs * 100), 100);
  EXPECT_EQ(DurationToCycles(100), 100 * kCyclesPerNs);
}

// ---------------------------------------------------------------------------
// Result / Status.
// ---------------------------------------------------------------------------

TEST(Result, OkCarriesValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.code(), ErrorCode::kOk);
}

TEST(Result, ErrorCarriesStatus) {
  Result<int> r(ErrorCode::kOutOfMemory, "pool dry");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kOutOfMemory);
  EXPECT_EQ(r.status().message(), "pool dry");
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, StatusToString) {
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  EXPECT_EQ(Status(ErrorCode::kTimeout, "rpc").ToString(), "TIMEOUT: rpc");
}

TEST(Result, EveryErrorCodeHasAName) {
  for (auto code : {ErrorCode::kOk, ErrorCode::kOutOfMemory, ErrorCode::kNotFound,
                    ErrorCode::kInvalidArgument, ErrorCode::kUnavailable, ErrorCode::kConflict,
                    ErrorCode::kTimeout, ErrorCode::kFailedPrecondition}) {
    EXPECT_STRNE(ErrorCodeName(code), "UNKNOWN");
  }
}

// ZOMBIE_CHECK_OK is the sanctioned way to consume a Status/Result that is
// guaranteed-ok by construction (Status and Result<T> are [[nodiscard]] and
// the build runs -Werror=unused-result, so silently dropping one no longer
// compiles).  Passing statuses must be a no-op; a failing status must abort
// loudly, naming the expression and the status.
TEST(Result, CheckOkPassesThroughOkValues) {
  ZOMBIE_CHECK_OK(Status::Ok());
  ZOMBIE_CHECK_OK(Result<int>(42));
  SUCCEED();
}

TEST(Result, CheckOkAbortsOnError) {
  EXPECT_DEATH(ZOMBIE_CHECK_OK(Status(ErrorCode::kTimeout, "rpc stalled")),
               "ZOMBIE_CHECK_OK.*TIMEOUT: rpc stalled");
  EXPECT_DEATH(ZOMBIE_CHECK_OK(Result<int>(ErrorCode::kNotFound, "gone")),
               "ZOMBIE_CHECK_OK.*NOT_FOUND: gone");
}

// ---------------------------------------------------------------------------
// SimClock / CostAccumulator.
// ---------------------------------------------------------------------------

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.Advance(5 * kSecond);
  clock.AdvanceTo(6 * kSecond);
  EXPECT_EQ(clock.now(), 6 * kSecond);
  clock.Reset();
  EXPECT_EQ(clock.now(), 0);
}

TEST(CostAccumulator, SumsCosts) {
  CostAccumulator acc;
  acc.AddNs(100);
  acc.AddCycles(kCyclesPerNs * 50);
  EXPECT_EQ(acc.total_ns(), 150);
  acc.Reset();
  EXPECT_EQ(acc.total_ns(), 0);
}

// ---------------------------------------------------------------------------
// EventQueue.
// ---------------------------------------------------------------------------

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  EXPECT_EQ(q.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(10, [&] { order.push_back(2); });
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, TiesFollowInsertionNotTimestampOfInsertion) {
  EventQueue q;
  std::vector<int> order;
  // Interleave two timestamps: ties at each instant must replay the order
  // the events were scheduled in, independent of the other instant.
  q.ScheduleAt(20, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(4); });
  q.ScheduleAt(10, [&] { order.push_back(2); });
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueue, TiesSurviveCancellationOfEarlierInsertions) {
  EventQueue q;
  std::vector<int> order;
  auto a = q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(10, [&] { order.push_back(2); });
  q.ScheduleAt(10, [&] { order.push_back(3); });
  q.Cancel(a);
  // Cancelling the first tied event must not reorder the survivors.
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{2, 3}));
}

TEST(EventQueue, EventScheduledAtNowRunsAfterAlreadyQueuedTies) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(10, [&] {
    order.push_back(1);
    // Scheduled mid-dispatch at the current instant: insertion order says it
    // runs after the events already queued for t=10, not before.
    q.ScheduleAt(10, [&] { order.push_back(3); });
  });
  q.ScheduleAt(10, [&] { order.push_back(2); });
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 10);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(10, [&] { ++fired; });
  q.ScheduleAt(100, [&] { ++fired; });
  EXPECT_EQ(q.RunUntil(50), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 50);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  auto id = q.ScheduleAt(10, [&] { ++fired; });
  q.ScheduleAt(20, [&] { ++fired; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // double cancel
  q.Run();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelAfterRunRejected) {
  EventQueue q;
  auto id = q.ScheduleAt(10, [] {});
  q.Run();
  EXPECT_FALSE(q.Cancel(id));  // already executed: counts stay exact
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, CancelledHeadDoesNotBlockRunUntil) {
  EventQueue q;
  int fired = 0;
  auto early = q.ScheduleAt(10, [&] { ++fired; });
  q.ScheduleAt(100, [&] { ++fired; });
  q.Cancel(early);
  // The cancelled head must be discarded without pulling the 100-tick event
  // across the 50-tick deadline.
  EXPECT_EQ(q.RunUntil(50), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(q.pending(), 1u);
  q.Run();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(10, [&] {
    ++fired;
    q.ScheduleAfter(5, [&] { ++fired; });
  });
  q.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 15);
}

TEST(EventQueue, PastEventsClampToNow) {
  EventQueue q;
  q.ScheduleAt(100, [] {});
  q.Run();
  bool ran = false;
  q.ScheduleAt(10, [&] { ran = true; });  // in the past
  q.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(q.now(), 100);
}

// ---------------------------------------------------------------------------
// Rng.
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(7);
  Rng b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ExponentialHasRoughlyRightMean) {
  Rng rng(3);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(Rng, ZipfPrefersLowRanks) {
  Rng rng(4);
  int low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextZipf(1000, 0.9) < 100) {
      ++low;  // top 10% of ranks
    }
  }
  // With theta=0.9 the head should receive far more than 10% of draws.
  EXPECT_GT(low, n / 2);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.Fork();
  EXPECT_NE(parent.Next(), child.Next());
}

// ---------------------------------------------------------------------------
// Stats.
// ---------------------------------------------------------------------------

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7;
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.count(), all.count());
}

TEST(Percentiles, MedianAndTails) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) {
    p.Add(i);
  }
  EXPECT_NEAR(p.Median(), 50.5, 0.01);
  EXPECT_NEAR(p.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(p.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(p.Percentile(99), 99.01, 0.011);
}

TEST(Percentiles, EmptySampleSetIsDefinedZero) {
  Percentiles p;
  // The documented empty-set contract: 0.0 sentinel, never NaN, and the
  // Summary carries count == 0 so callers can tell "empty" from "all zero".
  EXPECT_EQ(p.Percentile(50), 0.0);
  EXPECT_EQ(p.Median(), 0.0);
  const PercentileSummary s = p.Summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p99, 0.0);
  EXPECT_EQ(s.p999, 0.0);
  EXPECT_EQ(FormatPercentileSummary(s), "no samples");
}

TEST(Percentiles, LinearInterpolationBetweenClosestRanks) {
  Percentiles p;
  for (double x : {10.0, 20.0, 30.0, 40.0}) {
    p.Add(x);
  }
  // rank = p/100 * (n-1): p=50 on 4 samples lands at rank 1.5 -> 25.0.
  EXPECT_NEAR(p.Percentile(50), 25.0, 1e-9);
  EXPECT_NEAR(p.Percentile(25), 17.5, 1e-9);
  // Out-of-range p clamps to the extremes.
  EXPECT_NEAR(p.Percentile(-5), 10.0, 1e-9);
  EXPECT_NEAR(p.Percentile(200), 40.0, 1e-9);
}

TEST(Percentiles, SummaryMatchesIndividualQueries) {
  Percentiles p;
  for (int i = 0; i < 2000; ++i) {
    p.Add(static_cast<double>(i));
  }
  PercentileSummary s = p.Summary();
  EXPECT_EQ(s.count, 2000u);
  EXPECT_NEAR(s.p50, p.Percentile(50), 1e-9);
  EXPECT_NEAR(s.p99, p.Percentile(99), 1e-9);
  EXPECT_NEAR(s.p999, p.Percentile(99.9), 1e-9);
  EXPECT_LT(s.p50, s.p99);
  EXPECT_LT(s.p99, s.p999);
  EXPECT_FALSE(FormatPercentileSummary(s).empty());
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(5.5);
  h.Add(-3.0);   // clamps low
  h.Add(100.0);  // clamps high
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(5), 1u);
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_FALSE(h.Render().empty());
}

// ---------------------------------------------------------------------------
// TextTable.
// ---------------------------------------------------------------------------

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"a", "bee"});
  t.AddRow({"1", "2"});
  t.AddRow({"333", "4"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("a    bee"), std::string::npos);
  EXPECT_NE(out.find("333  4"), std::string::npos);
}

TEST(TextTable, PenaltyFormatting) {
  EXPECT_EQ(TextTable::Penalty(8.0), "8.00%");
  EXPECT_EQ(TextTable::Penalty(15.6), "15.6%");
  EXPECT_EQ(TextTable::Penalty(9000.0), "9k%");
  EXPECT_EQ(TextTable::Penalty(2e7), "inf");
}

}  // namespace
}  // namespace zombie
