// Tests for trace CSV import/export.
#include <gtest/gtest.h>

#include <sstream>

#include "src/acpi/energy_model.h"
#include "src/sim/dc_sim.h"
#include "src/sim/trace.h"
#include "src/sim/trace_io.h"

namespace zombie::sim {
namespace {

TEST(TraceIo, RoundTripPreservesTasks) {
  TraceConfig config;
  config.seed = 5;
  config.servers = 20;
  config.tasks = 150;
  config.horizon = 6 * kHour;
  const Trace original = GenerateTrace(config);

  std::stringstream buffer;
  WriteTraceCsv(original, buffer);
  auto loaded = ReadTraceCsv(buffer, config.servers);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().tasks.size(), original.tasks.size());
  for (std::size_t i = 0; i < original.tasks.size(); ++i) {
    const auto& a = original.tasks[i];
    const auto& b = loaded.value().tasks[i];
    EXPECT_EQ(a.id, b.id);
    // Times survive to microsecond precision.
    EXPECT_NEAR(static_cast<double>(a.start), static_cast<double>(b.start),
                static_cast<double>(kMicrosecond));
    EXPECT_NEAR(a.booked_cpu, b.booked_cpu, 1e-6);
    EXPECT_NEAR(a.booked_mem, b.booked_mem, 1e-6);
    EXPECT_NEAR(a.cpu_usage_ratio, b.cpu_usage_ratio, 1e-6);
  }
}

TEST(TraceIo, HorizonDerivedFromLastTask) {
  std::stringstream buffer;
  buffer << kTraceCsvHeader << "\n";
  buffer << "1,0,1000000,0.25,0.5,0.4\n";     // ends at 1 s
  buffer << "2,500000,3000000,0.125,0.25,0.1\n";  // ends at 3 s
  auto loaded = ReadTraceCsv(buffer, 10);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().config.horizon, 3 * kSecond);
  EXPECT_EQ(loaded.value().config.servers, 10u);
}

TEST(TraceIo, RejectsBadHeader) {
  std::stringstream buffer;
  buffer << "id,when\n1,2\n";
  EXPECT_EQ(ReadTraceCsv(buffer, 10).code(), ErrorCode::kInvalidArgument);
}

TEST(TraceIo, RejectsWrongFieldCount) {
  std::stringstream buffer;
  buffer << kTraceCsvHeader << "\n1,0,100\n";
  auto loaded = ReadTraceCsv(buffer, 10);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
}

// The from_chars parser must reject every malformed-field shape the old
// stringstream/stoull path (or a lenient parser) could let through.
TEST(TraceIo, RejectsMalformedLines) {
  const char* bad_lines[] = {
      "1,0,100,0.25,0.5",            // too few fields
      "1,0,100,0.25,0.5,0.4,9",      // too many fields
      "1,,100,0.25,0.5,0.4",         // empty field
      "1,0,100,0.25,0.5,0.4x",       // trailing junk after a number
      "1, 0,100,0.25,0.5,0.4",       // leading space (stoll accepted this)
      "0x1,0,100,0.25,0.5,0.4",      // hex id
      "1,0,100,0.25,nan_or_not,0.4", // non-numeric double
      ",0,100,0.25,0.5,0.4",         // empty id
      "1,0,100,0.5,nan,0.4",         // NaN parses but must be rejected
      "1,0,100,inf,0.5,0.4",         // likewise infinity
  };
  int index = 0;
  for (const char* bad : bad_lines) {
    std::stringstream buffer;
    buffer << kTraceCsvHeader << "\n" << bad << "\n";
    auto loaded = ReadTraceCsv(buffer, 10);
    ASSERT_FALSE(loaded.ok()) << "case " << index << ": " << bad;
    EXPECT_EQ(loaded.code(), ErrorCode::kInvalidArgument) << bad;
    EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos)
        << "case " << index << " should name the offending line: "
        << loaded.status().ToString();
    ++index;
  }
}

TEST(TraceIo, RejectsOutOfRangeFields) {
  std::stringstream buffer;
  buffer << kTraceCsvHeader << "\n";
  buffer << "1,100,50,0.25,0.5,0.4\n";  // end before start
  EXPECT_FALSE(ReadTraceCsv(buffer, 10).ok());

  std::stringstream buffer2;
  buffer2 << kTraceCsvHeader << "\n";
  buffer2 << "1,0,100,1.5,0.5,0.4\n";  // cpu booking above one server
  EXPECT_FALSE(ReadTraceCsv(buffer2, 10).ok());
}

TEST(TraceIo, RejectsGarbageNumbers) {
  std::stringstream buffer;
  buffer << kTraceCsvHeader << "\n";
  buffer << "1,zero,100,0.25,0.5,0.4\n";
  EXPECT_FALSE(ReadTraceCsv(buffer, 10).ok());
}

TEST(TraceIo, ToleratesCrlfAndBlankLines) {
  std::stringstream buffer;
  buffer << kTraceCsvHeader << "\r\n";
  buffer << "1,0,1000000,0.25,0.5,0.4\r\n";
  buffer << "\n";
  auto loaded = ReadTraceCsv(buffer, 10);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().tasks.size(), 1u);
}

TEST(TraceIo, MissingFileReported) {
  EXPECT_EQ(ReadTraceCsvFile("/nonexistent/trace.csv", 10).code(), ErrorCode::kNotFound);
}

TEST(TraceIo, LoadedTraceDrivesTheSimulator) {
  TraceConfig config;
  config.seed = 5;
  config.servers = 20;
  config.tasks = 200;
  config.horizon = 6 * kHour;
  const Trace original = GenerateTrace(config);
  std::stringstream buffer;
  WriteTraceCsv(original, buffer);
  auto loaded = ReadTraceCsv(buffer, config.servers, config.horizon);
  ASSERT_TRUE(loaded.ok());

  const auto profile = acpi::MachineProfile::HpCompaqElite8300();
  const auto from_original = RunPolicy(original, Policy::kZombieStack, profile);
  const auto from_loaded = RunPolicy(loaded.value(), Policy::kZombieStack, profile);
  // Microsecond rounding of task boundaries shifts a few placement steps;
  // the replays agree within 1%.
  EXPECT_NEAR(from_loaded.energy_units, from_original.energy_units,
              0.01 * from_original.energy_units);
}

}  // namespace
}  // namespace zombie::sim
