// Unit tests for the hypervisor layer: page table, FIFO/Clock/Mixed
// replacement policies, the host pager (RAM Ext path), backends, and the
// guest pager (Explicit SD path).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/hv/backend.h"
#include "src/hv/guest_pager.h"
#include "src/hv/page_table.h"
#include "src/hv/pager.h"
#include "src/hv/params.h"
#include "src/hv/replacement.h"

namespace zombie::hv {
namespace {

// ---------------------------------------------------------------------------
// Page table.
// ---------------------------------------------------------------------------

TEST(GuestPageTable, ClearAccessedBits) {
  GuestPageTable table(8);
  table.SetAccessed(2);
  table.SetAccessed(5);
  table.ClearAccessedBits();
  for (PageIndex p = 0; p < table.size(); ++p) {
    EXPECT_FALSE(table.Accessed(p));
  }
}

TEST(GuestPageTable, CountPresent) {
  GuestPageTable table(8);
  table.at(1).present = true;
  table.at(3).present = true;
  EXPECT_EQ(table.CountPresent(), 2u);
}

// ---------------------------------------------------------------------------
// Replacement policies.
// ---------------------------------------------------------------------------

TEST(Policies, FifoEvictsOldestFault) {
  PagingParams params;
  FifoPolicy fifo(params);
  GuestPageTable table(10);
  for (PageIndex p : {3u, 1u, 7u}) {
    table.at(p).present = true;
    fifo.OnPageIn(p);
  }
  // Even if the oldest page was just accessed, FIFO takes it.
  table.SetAccessed(3);
  const auto victim = fifo.PickVictim(table);
  EXPECT_EQ(victim.page, 3u);
  EXPECT_EQ(fifo.tracked(), 2u);
}

TEST(Policies, ClockSkipsAccessedPages) {
  PagingParams params;
  ClockPolicy clock(params);
  GuestPageTable table(10);
  for (PageIndex p : {3u, 1u, 7u}) {
    table.at(p).present = true;
    clock.OnPageIn(p);
  }
  table.SetAccessed(3);  // the head is protected by its A-bit
  const auto victim = clock.PickVictim(table);
  EXPECT_EQ(victim.page, 1u);
  // The scan only *checks* bits; clearing is the periodic scan's job
  // ("The 'accessed' bit of all pages is periodically cleared").
  EXPECT_TRUE(table.Accessed(3));
}

TEST(Policies, ClockWrapsWhenAllAccessed) {
  PagingParams params;
  ClockPolicy clock(params);
  GuestPageTable table(10);
  for (PageIndex p : {3u, 1u, 7u}) {
    table.at(p).present = true;
    table.SetAccessed(p);
    clock.OnPageIn(p);
  }
  const auto victim = clock.PickVictim(table);
  EXPECT_EQ(victim.page, 3u);  // full scan, then the head falls
}

TEST(Policies, ClockCostGrowsWithScanLength) {
  PagingParams params;
  ClockPolicy clock(params);
  GuestPageTable table(100);
  for (PageIndex p = 0; p < 50; ++p) {
    table.at(p).present = true;
    table.SetAccessed(p);  // force a long scan
    clock.OnPageIn(p);
  }
  const auto long_scan = clock.PickVictim(table);

  ClockPolicy clock2(params);
  GuestPageTable table2(100);
  for (PageIndex p = 0; p < 50; ++p) {
    table2.at(p).present = true;  // A-bits clear: first node wins
    clock2.OnPageIn(p);
  }
  const auto short_scan = clock2.PickVictim(table2);
  EXPECT_GT(long_scan.cycles, 10 * short_scan.cycles);
}

TEST(Policies, MixedBoundsScanDepth) {
  PagingParams params;
  MixedPolicy mixed(params, /*depth=*/5);
  GuestPageTable table(100);
  for (PageIndex p = 0; p < 50; ++p) {
    table.at(p).present = true;
    table.SetAccessed(p);
    mixed.OnPageIn(p);
  }
  const auto victim = mixed.PickVictim(table);
  // Scanned only 5 entries then fell back to FIFO: bounded cost.
  const Cycles bound = params.policy_fixed_cycles +
                       5 * (params.list_node_cycles + params.accessed_check_cycles) +
                       params.fifo_pop_cycles;
  EXPECT_LE(victim.cycles, bound);
  // The FIFO fallback takes the element right after the scanned prefix.
  EXPECT_EQ(victim.page, 5u);
}

TEST(Policies, MixedPicksUnaccessedWithinDepth) {
  PagingParams params;
  MixedPolicy mixed(params, 5);
  GuestPageTable table(10);
  for (PageIndex p : {0u, 1u, 2u}) {
    table.at(p).present = true;
    table.SetAccessed(p);
    mixed.OnPageIn(p);
  }
  table.ClearAccessed(1);
  const auto victim = mixed.PickVictim(table);
  EXPECT_EQ(victim.page, 1u);
}

TEST(Policies, OnPageGoneRemovesFromList) {
  PagingParams params;
  FifoPolicy fifo(params);
  GuestPageTable table(10);
  for (PageIndex p : {0u, 1u, 2u}) {
    table.at(p).present = true;
    fifo.OnPageIn(p);
  }
  fifo.OnPageGone(0);
  EXPECT_EQ(fifo.tracked(), 2u);
  EXPECT_EQ(fifo.PickVictim(table).page, 1u);
}

TEST(Policies, FactoryProducesAllKinds) {
  PagingParams params;
  EXPECT_EQ(MakePolicy(PolicyKind::kFifo, params)->kind(), PolicyKind::kFifo);
  EXPECT_EQ(MakePolicy(PolicyKind::kClock, params)->kind(), PolicyKind::kClock);
  EXPECT_EQ(MakePolicy(PolicyKind::kMixed, params)->kind(), PolicyKind::kMixed);
  EXPECT_EQ(PolicyKindName(PolicyKind::kMixed), "Mixed");
}

// ---------------------------------------------------------------------------
// HostPager (RAM Ext fault handler).
// ---------------------------------------------------------------------------

class PagerTest : public ::testing::Test {
 protected:
  PagerTest() : backend_("test-dev", DeviceLatency{10 * kMicrosecond, 8 * kMicrosecond}) {}

  std::unique_ptr<HostPager> MakePager(std::uint64_t pages, std::uint64_t frames,
                                       PolicyKind kind = PolicyKind::kMixed) {
    PagingParams params;
    return std::make_unique<HostPager>(pages, frames, MakePolicy(kind, params), &backend_,
                                       params);
  }

  DeviceBackend backend_;
};

TEST_F(PagerTest, FirstTouchIsMinorFault) {
  auto pager = MakePager(10, 10);
  auto cost = pager->Access(0, false);
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(pager->stats().faults, 1u);
  EXPECT_EQ(pager->stats().major_faults, 0u);  // zero-fill, no backend read
  // Second access: resident, cheap.
  auto hit = pager->Access(0, false);
  ASSERT_TRUE(hit.ok());
  EXPECT_LT(hit.value(), cost.value());
  EXPECT_EQ(pager->stats().faults, 1u);
}

TEST_F(PagerTest, EvictionKicksInWhenFramesExhausted) {
  auto pager = MakePager(4, 2);
  ASSERT_TRUE(pager->Access(0, true).ok());
  ASSERT_TRUE(pager->Access(1, true).ok());
  EXPECT_EQ(pager->free_frames(), 0u);
  ASSERT_TRUE(pager->Access(2, true).ok());  // forces an eviction
  EXPECT_EQ(pager->stats().evictions, 1u);
  EXPECT_EQ(pager->table().CountPresent(), 2u);
}

TEST_F(PagerTest, DirtyEvictionWritesBackCleanDoesNot) {
  auto pager = MakePager(4, 1);
  ASSERT_TRUE(pager->Access(0, true).ok());   // dirty
  ASSERT_TRUE(pager->Access(1, false).ok());  // evicts 0 -> writeback
  EXPECT_EQ(pager->stats().writebacks, 1u);
  ASSERT_TRUE(pager->Access(2, false).ok());  // evicts 1 (clean) -> no writeback
  EXPECT_EQ(pager->stats().writebacks, 1u);
}

TEST_F(PagerTest, SwappedPageReloadsAsMajorFault) {
  auto pager = MakePager(4, 1);
  ASSERT_TRUE(pager->Access(0, true).ok());
  ASSERT_TRUE(pager->Access(1, false).ok());  // 0 swapped out
  EXPECT_TRUE(pager->table().at(0).swapped);
  auto cost = pager->Access(0, false);  // reload
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(pager->stats().major_faults, 1u);
  // Reload pays the backend read latency.
  EXPECT_GE(cost.value(), 10 * kMicrosecond);
}

TEST_F(PagerTest, OutOfRangeRejected) {
  auto pager = MakePager(4, 2);
  EXPECT_FALSE(pager->Access(4, false).ok());
}

TEST_F(PagerTest, HotPagesStayResidentUnderMixed) {
  // A hot page accessed between faults should survive eviction pressure.
  auto pager = MakePager(64, 8, PolicyKind::kMixed);
  for (int round = 0; round < 30; ++round) {
    ASSERT_TRUE(pager->Access(0, false).ok());  // the hot page
    ASSERT_TRUE(pager->Access(8 + (round % 32), false).ok());
  }
  // Page 0 never got evicted: exactly one fault for it.
  std::uint64_t major = pager->stats().major_faults;
  ASSERT_TRUE(pager->Access(0, false).ok());
  EXPECT_EQ(pager->stats().major_faults, major);  // still resident
}

TEST_F(PagerTest, StatsAccumulateCost) {
  auto pager = MakePager(8, 8);
  Duration sum = 0;
  for (PageIndex p = 0; p < 8; ++p) {
    auto cost = pager->Access(p, false);
    ASSERT_TRUE(cost.ok());
    sum += cost.value();
  }
  EXPECT_EQ(pager->stats().total_cost, sum);
  EXPECT_EQ(pager->stats().accesses, 8u);
  pager->ResetStats();
  EXPECT_EQ(pager->stats().accesses, 0u);
}

// ---------------------------------------------------------------------------
// Backends.
// ---------------------------------------------------------------------------

TEST(Backends, DeviceLatenciesOrdered) {
  auto ssd = MakeLocalSsdBackend();
  auto hdd = MakeLocalHddBackend();
  EXPECT_LT(ssd->LoadPage(0).value(), hdd->LoadPage(0).value());
  EXPECT_LT(ssd->StorePage(0).value(), hdd->StorePage(0).value());
  EXPECT_EQ(ssd->name(), "local-ssd");
  EXPECT_EQ(hdd->capacity_pages(), PageBackend::kNoLimit);
}

// ---------------------------------------------------------------------------
// GuestPager (Explicit SD).
// ---------------------------------------------------------------------------

TEST(GuestPagerTest, ReserveShrinksUsableFrames) {
  DeviceBackend dev("dev", {10 * kMicrosecond, 8 * kMicrosecond});
  GuestSwapConfig config;
  config.ram_reserve_fraction = 0.25;
  GuestPager pager(100, 40, &dev, config);
  EXPECT_EQ(pager.usable_frames(), 30u);  // 40 * (1 - 0.25)
}

TEST(GuestPagerTest, AmplificationProducesExtraWritebacks) {
  DeviceBackend dev("dev", {10 * kMicrosecond, 8 * kMicrosecond});
  GuestSwapConfig amplified;
  amplified.traffic_amplification = 3.0;
  amplified.ram_reserve_fraction = 0.0;
  GuestSwapConfig plain;
  plain.traffic_amplification = 1.0;
  plain.ram_reserve_fraction = 0.0;

  auto run = [&](GuestSwapConfig config) {
    GuestPager pager(32, 4, &dev, config);
    for (int round = 0; round < 10; ++round) {
      for (PageIndex p = 0; p < 32; ++p) {
        EXPECT_TRUE(pager.Access(p, true).ok());
      }
    }
    return pager.stats().writebacks;
  };
  const auto amplified_wb = run(amplified);
  const auto plain_wb = run(plain);
  EXPECT_GT(amplified_wb, 2 * plain_wb);
}

TEST(GuestPagerTest, SplitDriverOverheadCharged) {
  // Same device, with and without the virtio crossing: the ESD access that
  // faults must cost at least the split-driver overhead more.
  DeviceBackend dev("dev", {10 * kMicrosecond, 8 * kMicrosecond});
  GuestSwapConfig config;
  config.ram_reserve_fraction = 0.0;
  config.traffic_amplification = 1.0;
  GuestPager pager(4, 1, &dev, config);
  ASSERT_TRUE(pager.Access(0, true).ok());
  ASSERT_TRUE(pager.Access(1, false).ok());
  auto reload = pager.Access(0, false);  // major fault through virtio
  ASSERT_TRUE(reload.ok());
  EXPECT_GE(reload.value(),
            10 * kMicrosecond + config.split_driver.request_overhead);
}

TEST(GuestPagerTest, OutOfRangeRejected) {
  DeviceBackend dev("dev", {});
  GuestPager pager(4, 4, &dev, {});
  EXPECT_FALSE(pager.Access(99, false).ok());
}

}  // namespace
}  // namespace zombie::hv
