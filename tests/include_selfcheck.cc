// Header-hygiene spot check: every public header must compile when included
// on its own.  This TU includes each of them first (alphabetical order, which
// also means no header may depend on a "later" sibling being included
// beforehand), and the one registered test only exists so the TU stays wired
// into ctest and can never silently drop out of the build.
//
// Regenerate the list after adding a header:
//   find src -name '*.h' | sort | sed 's|.*|#include "&"|'
#include "src/acpi/device.h"
#include "src/acpi/energy_model.h"
#include "src/acpi/firmware.h"
#include "src/acpi/machine.h"
#include "src/acpi/ospm.h"
#include "src/acpi/power_domain.h"
#include "src/acpi/power_meter.h"
#include "src/acpi/registers.h"
#include "src/acpi/sleep_state.h"
#include "src/cloud/admission.h"
#include "src/cloud/consolidation.h"
#include "src/cloud/faults.h"
#include "src/cloud/oasis.h"
#include "src/cloud/placement.h"
#include "src/cloud/rack.h"
#include "src/cloud/rack_energy.h"
#include "src/cloud/runtime.h"
#include "src/cloud/server.h"
#include "src/common/env.h"
#include "src/common/event_queue.h"
#include "src/common/logging.h"
#include "src/common/report.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/sim_clock.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/common/work_queue.h"
#include "src/hv/backend.h"
#include "src/hv/fault_batch.h"
#include "src/hv/guest_pager.h"
#include "src/hv/page_table.h"
#include "src/hv/pager.h"
#include "src/hv/params.h"
#include "src/hv/replacement.h"
#include "src/hv/sharded_pager.h"
#include "src/hv/split_driver.h"
#include "src/hv/vm.h"
#include "src/migration/migration.h"
#include "src/rdma/fabric.h"
#include "src/rdma/rpc.h"
#include "src/rdma/verbs.h"
#include "src/remotemem/buffer_db.h"
#include "src/remotemem/control_plane.h"
#include "src/remotemem/global_controller.h"
#include "src/remotemem/lease.h"
#include "src/remotemem/memory_manager.h"
#include "src/remotemem/secondary_controller.h"
#include "src/remotemem/sharded_plane.h"
#include "src/remotemem/types.h"
#include "src/remotemem/wire.h"
#include "src/scenario/diff.h"
#include "src/scenario/driver.h"
#include "src/scenario/point_cache.h"
#include "src/scenario/registry.h"
#include "src/scenario/scenario.h"
#include "src/scenario/spec.h"
#include "src/scenario/testbed.h"
#include "src/serve/daemon.h"
#include "src/serve/metrics.h"
#include "src/serve/request.h"
#include "src/serve/stream.h"
#include "src/sim/cooling.h"
#include "src/sim/dc_sim.h"
#include "src/sim/trace.h"
#include "src/sim/trace_io.h"
#include "src/workloads/access_pattern.h"
#include "src/workloads/app_models.h"
#include "src/workloads/runner.h"
#include "src/workloads/sharded_hotloop.h"

#include <gtest/gtest.h>

namespace zombie {
namespace {

TEST(IncludeSelfcheck, AllPublicHeadersCompile) { SUCCEED(); }

}  // namespace
}  // namespace zombie
