// Unit and integration tests for the cloud layer: server bookkeeping, the
// wired rack (Fig. 7), placement (Section 5.1), Neat consolidation
// (Section 5.2), the Oasis baseline and the Fig. 4 rack-energy estimator.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/cloud/consolidation.h"
#include "src/cloud/oasis.h"
#include "src/cloud/placement.h"
#include "src/cloud/rack.h"
#include "src/cloud/rack_energy.h"
#include "src/cloud/server.h"

namespace zombie::cloud {
namespace {

hv::VmSpec MakeVm(hv::VmId id, Bytes reserved, std::uint32_t vcpus, Bytes wss = 0) {
  hv::VmSpec vm;
  vm.id = id;
  vm.name = "vm-" + std::to_string(id);
  vm.reserved_memory = reserved;
  vm.vcpus = vcpus;
  vm.working_set = wss == 0 ? reserved / 2 : wss;
  return vm;
}

RackConfig SmallRack() {
  RackConfig config;
  config.buff_size = 64 * kMiB;
  config.materialize_memory = false;
  return config;
}

// ---------------------------------------------------------------------------
// Server bookkeeping.
// ---------------------------------------------------------------------------

TEST(Server, CapacityAccounting) {
  Server s(1, "s1", acpi::MachineProfile::HpCompaqElite8300(), {8, 16 * kGiB});
  ASSERT_TRUE(s.HostVm(MakeVm(1, 4 * kGiB, 4), 4 * kGiB).ok());
  EXPECT_EQ(s.UsedCpus(), 4u);
  EXPECT_EQ(s.UsedLocalMemory(), 4 * kGiB);
  EXPECT_EQ(s.FreeLocalMemory(), 12 * kGiB);
  EXPECT_DOUBLE_EQ(s.CpuUtilization(), 0.5);
  ASSERT_TRUE(s.DropVm(1).ok());
  EXPECT_EQ(s.UsedCpus(), 0u);
}

TEST(Server, RejectsOverCommit) {
  Server s(1, "s1", acpi::MachineProfile::HpCompaqElite8300(), {8, 16 * kGiB});
  EXPECT_FALSE(s.HostVm(MakeVm(1, 4 * kGiB, 16), 4 * kGiB).ok());   // cpus
  EXPECT_FALSE(s.HostVm(MakeVm(2, 32 * kGiB, 4), 32 * kGiB).ok());  // memory
  EXPECT_FALSE(s.HostVm(MakeVm(3, 4 * kGiB, 4), 8 * kGiB).ok());    // local > reserved
}

TEST(Server, LentMemoryShrinksCapacity) {
  Server s(1, "s1", acpi::MachineProfile::HpCompaqElite8300(), {8, 16 * kGiB});
  s.set_lent_memory(12 * kGiB);
  EXPECT_EQ(s.FreeLocalMemory(), 4 * kGiB);
  EXPECT_FALSE(s.HostVm(MakeVm(1, 8 * kGiB, 4), 8 * kGiB).ok());
}

TEST(Server, PartialLocalHosting) {
  Server s(1, "s1", acpi::MachineProfile::HpCompaqElite8300(), {8, 16 * kGiB});
  // A VM with 8 GiB reserved but only 4 GiB local (rest remote).
  ASSERT_TRUE(s.HostVm(MakeVm(1, 8 * kGiB, 4), 4 * kGiB).ok());
  EXPECT_EQ(s.LocalBytesOf(1), 4 * kGiB);
  EXPECT_EQ(s.UsedLocalMemory(), 4 * kGiB);
}

// ---------------------------------------------------------------------------
// Rack integration (Fig. 7 wiring).
// ---------------------------------------------------------------------------

class RackTest : public ::testing::Test {
 protected:
  RackTest() : rack_(SmallRack()) {
    for (int i = 0; i < 4; ++i) {
      rack_.AddServer("node" + std::to_string(i + 1),
                      acpi::MachineProfile::HpCompaqElite8300(), {8, 16 * kGiB});
    }
  }
  Rack rack_;
};

TEST_F(RackTest, PushToZombieDelegatesMemory) {
  const auto id = rack_.servers()[2]->id();
  ASSERT_TRUE(rack_.PushToZombie(id).ok());
  Server* server = rack_.FindServer(id);
  EXPECT_EQ(server->machine().state(), acpi::SleepState::kSz);
  EXPECT_EQ(server->role(), Role::kZombie);
  EXPECT_GT(server->lent_memory(), 12 * kGiB);  // ~90% of 16 GiB free
  EXPECT_EQ(rack_.controller().FreeRemoteBytes(), server->lent_memory());
  EXPECT_TRUE(rack_.controller().IsZombie(id));
  // The zombie still serves one-sided RDMA.
  EXPECT_TRUE(rack_.fabric().NodeMemoryAccessible(server->node()));
  EXPECT_FALSE(rack_.fabric().NodeCanInitiate(server->node()));
}

TEST_F(RackTest, PushToZombieRefusedWithVms) {
  const auto id = rack_.servers()[0]->id();
  ASSERT_TRUE(rack_.FindServer(id)->HostVm(MakeVm(1, 2 * kGiB, 2), 2 * kGiB).ok());
  EXPECT_EQ(rack_.PushToZombie(id).code(), ErrorCode::kFailedPrecondition);
}

TEST_F(RackTest, WakeReclaimsLentMemory) {
  const auto id = rack_.servers()[2]->id();
  ASSERT_TRUE(rack_.PushToZombie(id).ok());
  const Bytes lent = rack_.FindServer(id)->lent_memory();
  EXPECT_GT(lent, 0u);
  auto latency = rack_.WakeServer(id);
  ASSERT_TRUE(latency.ok());
  EXPECT_GT(latency.value(), 0);
  EXPECT_EQ(rack_.FindServer(id)->machine().state(), acpi::SleepState::kS0);
  EXPECT_EQ(rack_.FindServer(id)->lent_memory(), 0u);
  EXPECT_EQ(rack_.controller().FreeRemoteBytes(), 0u);
}

TEST_F(RackTest, UserAllocatesZombieMemoryEndToEnd) {
  const auto zombie_id = rack_.servers()[3]->id();
  ASSERT_TRUE(rack_.PushToZombie(zombie_id).ok());
  auto& user_mgr = rack_.manager(rack_.servers()[0]->id());
  auto extent = user_mgr.AllocExtension(1 * kGiB);
  ASSERT_TRUE(extent.ok()) << extent.status().ToString();
  EXPECT_GE(extent.value()->capacity(), 1 * kGiB);
  // Paging traffic works against the suspended host.
  EXPECT_TRUE(extent.value()->WritePage(0, {}).ok());
  EXPECT_TRUE(extent.value()->ReadPage(0, {}).ok());
}

TEST_F(RackTest, ReclaimNoticeReachesUserManager) {
  const auto zombie_id = rack_.servers()[3]->id();
  ASSERT_TRUE(rack_.PushToZombie(zombie_id).ok());
  auto& user_mgr = rack_.manager(rack_.servers()[0]->id());
  auto extent = user_mgr.AllocExtension(512 * kMiB);
  ASSERT_TRUE(extent.ok());
  ASSERT_TRUE(extent.value()->WritePage(1, {}).ok());

  // The zombie wakes: its buffers are reclaimed, the user's extent must
  // serve that page from the local mirror now.
  ASSERT_TRUE(rack_.WakeServer(zombie_id).ok());
  auto cost = extent.value()->ReadPage(1, {});
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(extent.value()->mirror_reads(), 1u);
}

TEST_F(RackTest, PowerDropsWhenServersGoZombie) {
  const double before = rack_.TotalPowerPercent();
  ASSERT_TRUE(rack_.PushToZombie(rack_.servers()[2]->id()).ok());
  ASSERT_TRUE(rack_.PushToZombie(rack_.servers()[3]->id()).ok());
  const double after = rack_.TotalPowerPercent();
  EXPECT_LT(after, before - 15.0);  // two servers fell from ~54% to ~12.7%
  EXPECT_GT(rack_.TotalPowerWatts(), 0.0);
}

TEST_F(RackTest, ControllerFailoverPromotesSecondary) {
  const auto zombie_id = rack_.servers()[3]->id();
  ASSERT_TRUE(rack_.PushToZombie(zombie_id).ok());
  const Bytes pool_before = rack_.controller().FreeRemoteBytes();

  rack_.PumpHeartbeat();  // healthy beat
  rack_.FailPrimaryController();
  // Three silent monitor ticks trigger failover.
  rack_.PumpHeartbeat();
  rack_.PumpHeartbeat();
  rack_.PumpHeartbeat();

  // The promoted controller carries the replicated pool state.
  EXPECT_EQ(rack_.controller().FreeRemoteBytes(), pool_before);
  EXPECT_TRUE(rack_.controller().IsZombie(zombie_id));
  // And the rack keeps operating: a user can still allocate.
  auto extent = rack_.manager(rack_.servers()[0]->id()).AllocExtension(256 * kMiB);
  EXPECT_TRUE(extent.ok()) << extent.status().ToString();
}

TEST_F(RackTest, SleepWithoutLendingKeepsPoolEmpty) {
  ASSERT_TRUE(rack_.PushToSleep(rack_.servers()[1]->id(), acpi::SleepState::kS3).ok());
  EXPECT_EQ(rack_.controller().FreeRemoteBytes(), 0u);
  EXPECT_FALSE(
      rack_.fabric().NodeMemoryAccessible(rack_.servers()[1]->node()));
}

// ---------------------------------------------------------------------------
// Placement (Section 5.1).
// ---------------------------------------------------------------------------

class PlacementTest : public ::testing::Test {
 protected:
  PlacementTest() {
    for (int i = 0; i < 3; ++i) {
      servers_.push_back(std::make_unique<Server>(
          i + 1, "s" + std::to_string(i + 1), acpi::MachineProfile::HpCompaqElite8300(),
          ServerCapacity{8, 16 * kGiB}));
    }
  }

  std::vector<Server*> Hosts() {
    std::vector<Server*> out;
    for (auto& s : servers_) {
      out.push_back(s.get());
    }
    return out;
  }

  std::vector<std::unique_ptr<Server>> servers_;
};

TEST_F(PlacementTest, VanillaFilterNeedsFullMemory) {
  PlacementConfig config;
  config.local_memory_floor = 1.0;  // vanilla Nova
  NovaScheduler nova(config);
  const auto vm = MakeVm(1, 24 * kGiB, 4);  // bigger than any host
  EXPECT_FALSE(nova.Place(Hosts(), vm).has_value());
}

TEST_F(PlacementTest, RelaxedFilterUsesRemotePool) {
  PlacementConfig config;
  config.local_memory_floor = 0.5;
  config.remote_pool_available = 16 * kGiB;
  NovaScheduler nova(config);
  const auto vm = MakeVm(1, 24 * kGiB, 4);
  const auto decision = nova.Place(Hosts(), vm);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->local_bytes, 16 * kGiB);
  EXPECT_EQ(decision->remote_bytes, 8 * kGiB);
}

TEST_F(PlacementTest, RelaxedFilterStillNeedsPool) {
  PlacementConfig config;
  config.local_memory_floor = 0.5;
  config.remote_pool_available = 0;  // no zombies yet
  NovaScheduler nova(config);
  EXPECT_FALSE(nova.Place(Hosts(), MakeVm(1, 24 * kGiB, 4)).has_value());
}

TEST_F(PlacementTest, SuspendedHostsFiltered) {
  ASSERT_TRUE(servers_[0]->machine().Suspend(acpi::SleepState::kS3).ok());
  NovaScheduler nova;
  const auto decision = nova.Place(Hosts(), MakeVm(1, 2 * kGiB, 2));
  ASSERT_TRUE(decision.has_value());
  EXPECT_NE(decision->host, servers_[0]->id());
}

TEST_F(PlacementTest, StackPrefersBusiestHost) {
  ASSERT_TRUE(servers_[1]->HostVm(MakeVm(9, 2 * kGiB, 4), 2 * kGiB).ok());
  PlacementConfig config;
  config.strategy = PlacementStrategy::kStack;
  NovaScheduler nova(config);
  const auto decision = nova.Place(Hosts(), MakeVm(1, 2 * kGiB, 2));
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->host, servers_[1]->id());
}

TEST_F(PlacementTest, SpreadPrefersEmptiestHost) {
  ASSERT_TRUE(servers_[1]->HostVm(MakeVm(9, 2 * kGiB, 4), 2 * kGiB).ok());
  PlacementConfig config;
  config.strategy = PlacementStrategy::kSpread;
  NovaScheduler nova(config);
  const auto decision = nova.Place(Hosts(), MakeVm(1, 2 * kGiB, 2));
  ASSERT_TRUE(decision.has_value());
  EXPECT_NE(decision->host, servers_[1]->id());
}

// ---------------------------------------------------------------------------
// Consolidation (Section 5.2).
// ---------------------------------------------------------------------------

class ConsolidationTest : public PlacementTest {};

TEST_F(ConsolidationTest, DrainsUnderloadedHost) {
  // s1 nearly full, s2 almost idle: s2 should drain into s1.
  ASSERT_TRUE(servers_[0]->HostVm(MakeVm(1, 4 * kGiB, 5), 4 * kGiB).ok());
  ASSERT_TRUE(servers_[1]->HostVm(MakeVm(2, 2 * kGiB, 1), 2 * kGiB).ok());
  NeatPlanner planner(ConsolidationConfig{ConsolidationMode::kZombieStack, 0.20, 0.90, 0.30});
  const auto plan = planner.Plan(Hosts());
  ASSERT_EQ(plan.migrations.size(), 1u);
  EXPECT_EQ(plan.migrations[0].vm, 2u);
  EXPECT_EQ(plan.migrations[0].from, servers_[1]->id());
  ASSERT_EQ(plan.hosts_to_suspend.size(), 1u);
  EXPECT_EQ(plan.hosts_to_suspend[0], servers_[1]->id());
}

TEST_F(ConsolidationTest, VanillaNeatNeedsFullBooking) {
  // Target host has CPU room but not full memory for the VM.
  ASSERT_TRUE(servers_[0]->HostVm(MakeVm(1, 14 * kGiB, 5), 14 * kGiB).ok());
  ASSERT_TRUE(servers_[1]->HostVm(MakeVm(2, 6 * kGiB, 1), 6 * kGiB).ok());
  ASSERT_TRUE(servers_[2]->HostVm(MakeVm(3, 14 * kGiB, 5), 14 * kGiB).ok());

  NeatPlanner vanilla(ConsolidationConfig{ConsolidationMode::kNeat, 0.20, 0.90, 0.30});
  const auto plan = vanilla.Plan(Hosts());
  EXPECT_TRUE(plan.hosts_to_suspend.empty());  // 6 GiB fits nowhere fully

  // ZombieStack only needs 30% of the WSS (3 GiB -> 0.9 GiB) locally.
  NeatPlanner zombie(ConsolidationConfig{ConsolidationMode::kZombieStack, 0.20, 0.90, 0.30});
  const auto zplan = zombie.Plan(Hosts());
  EXPECT_EQ(zplan.hosts_to_suspend.size(), 1u);
}

TEST_F(ConsolidationTest, OverloadedHostShedsSmallestVm) {
  ASSERT_TRUE(servers_[0]->HostVm(MakeVm(1, 2 * kGiB, 6), 2 * kGiB).ok());
  ASSERT_TRUE(servers_[0]->HostVm(MakeVm(2, 1 * kGiB, 2), 1 * kGiB).ok());  // 8/8 cpus
  NeatPlanner planner(ConsolidationConfig{ConsolidationMode::kZombieStack, 0.20, 0.90, 0.30});
  const auto plan = planner.Plan(Hosts());
  ASSERT_FALSE(plan.migrations.empty());
  EXPECT_EQ(plan.migrations[0].vm, 2u);  // the small one moves
}

TEST_F(ConsolidationTest, WakesLruZombieWhenNothingFits) {
  // Overloaded source, and the only other awake host is full too.
  ASSERT_TRUE(servers_[0]->HostVm(MakeVm(1, 2 * kGiB, 8), 2 * kGiB).ok());
  ASSERT_TRUE(servers_[1]->HostVm(MakeVm(2, 2 * kGiB, 8), 2 * kGiB).ok());
  ASSERT_TRUE(servers_[2]->machine().Suspend(acpi::SleepState::kSz).ok());
  NeatPlanner planner(ConsolidationConfig{ConsolidationMode::kZombieStack, 0.20, 0.90, 0.30});
  const auto plan = planner.Plan(Hosts(), /*lru_zombie=*/servers_[2]->id());
  ASSERT_EQ(plan.hosts_to_wake.size(), 1u);
  EXPECT_EQ(plan.hosts_to_wake[0], servers_[2]->id());
}

TEST_F(ConsolidationTest, EmptyPlanWhenBalanced) {
  ASSERT_TRUE(servers_[0]->HostVm(MakeVm(1, 4 * kGiB, 4), 4 * kGiB).ok());
  ASSERT_TRUE(servers_[1]->HostVm(MakeVm(2, 4 * kGiB, 4), 4 * kGiB).ok());
  NeatPlanner planner(ConsolidationConfig{ConsolidationMode::kZombieStack, 0.20, 0.90, 0.30});
  EXPECT_TRUE(planner.Plan(Hosts()).empty());
}

// ---------------------------------------------------------------------------
// Oasis.
// ---------------------------------------------------------------------------

TEST_F(PlacementTest, OasisPartiallyMigratesIdleVms) {
  // s1 underused with one idle VM; s2 has room for the WSS only.
  ASSERT_TRUE(servers_[0]->HostVm(MakeVm(1, 8 * kGiB, 1, /*wss=*/2 * kGiB), 8 * kGiB).ok());
  ASSERT_TRUE(servers_[1]->HostVm(MakeVm(2, 13 * kGiB, 5), 13 * kGiB).ok());

  OasisPlanner planner;
  std::map<hv::VmId, double> util{{1, 0.0}, {2, 0.5}};
  const auto plan = planner.Plan(Hosts(), util);
  ASSERT_EQ(plan.partial_migrations.size(), 1u);
  EXPECT_EQ(plan.partial_migrations[0].wss_moved, 2 * kGiB);
  EXPECT_EQ(plan.partial_migrations[0].cold_parked, 6 * kGiB);
  EXPECT_EQ(plan.hosts_to_suspend.size(), 1u);
  EXPECT_EQ(plan.total_cold_parked, 6 * kGiB);
  EXPECT_EQ(plan.memory_servers_needed, 1u);
}

TEST_F(PlacementTest, OasisBusyVmsMoveInFull) {
  ASSERT_TRUE(servers_[0]->HostVm(MakeVm(1, 4 * kGiB, 1), 4 * kGiB).ok());
  OasisPlanner planner;
  std::map<hv::VmId, double> util{{1, 0.5}};  // busy
  const auto plan = planner.Plan(Hosts(), util);
  ASSERT_EQ(plan.full_migrations.size(), 1u);
  EXPECT_TRUE(plan.partial_migrations.empty());
  EXPECT_EQ(plan.memory_servers_needed, 0u);
}

// ---------------------------------------------------------------------------
// Fig. 4 rack-energy estimator.
// ---------------------------------------------------------------------------

TEST(RackEnergy, Figure4OrderingHolds) {
  const auto demand = Figure4Demand();
  const double a = RackEnergy(Architecture::kServerCentric, demand);
  const double b = RackEnergy(Architecture::kIdealDisaggregated, demand);
  const double c = RackEnergy(Architecture::kMicroServers, demand);
  const double d = RackEnergy(Architecture::kZombie, demand);
  // Paper: a=2.1, c=1.8, d=1.2, b=1.15 (units of Emax).
  EXPECT_GT(a, c);
  EXPECT_GT(c, d);
  EXPECT_GE(d, b);
  EXPECT_NEAR(a, 2.1, 0.4);
  EXPECT_NEAR(c, 1.8, 0.4);
  EXPECT_NEAR(d, 1.2, 0.25);
  EXPECT_NEAR(b, 1.15, 0.25);
}

TEST(RackEnergy, ZeroDemandSuspendsEverything) {
  const std::vector<SlotDemand> idle(3, SlotDemand{0.0, 0.0});
  RackEnergyParams params;
  EXPECT_NEAR(RackEnergy(Architecture::kServerCentric, idle, params),
              3 * params.suspend_fraction, 1e-9);
  EXPECT_NEAR(RackEnergy(Architecture::kZombie, idle, params), 3 * params.suspend_fraction,
              1e-9);
}

TEST(RackEnergy, FullDemandCostsFullRack) {
  const std::vector<SlotDemand> full(3, SlotDemand{1.0, 1.0});
  EXPECT_NEAR(RackEnergy(Architecture::kServerCentric, full), 3.0, 1e-9);
  EXPECT_NEAR(RackEnergy(Architecture::kZombie, full), 3.0, 1e-9);
}

TEST(RackEnergy, ZombieBeatsServerCentricOnMemoryOnlyDemand) {
  // One busy server plus one memory-only server: the zombie design shines.
  const std::vector<SlotDemand> demand{{1.0, 1.0}, {0.0, 0.9}};
  EXPECT_LT(RackEnergy(Architecture::kZombie, demand),
            RackEnergy(Architecture::kServerCentric, demand) - 0.3);
}

}  // namespace
}  // namespace zombie::cloud
