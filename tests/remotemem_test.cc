// Unit tests for the rack-level remote-memory protocol: buffer DB, global
// controller (GS_* calls), secondary controller mirroring/failover, and the
// remote-memory manager / extent.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/rdma/fabric.h"
#include "src/rdma/verbs.h"
#include "src/remotemem/buffer_db.h"
#include "src/remotemem/global_controller.h"
#include "src/remotemem/memory_manager.h"
#include "src/remotemem/secondary_controller.h"
#include "src/remotemem/types.h"

namespace zombie::remotemem {
namespace {

constexpr Bytes kTestBuff = 1 * kMiB;

BufferRecord MakeRecord(BufferId id, ServerId host, BufferType type,
                        ServerId user = kNilServer) {
  BufferRecord rec;
  rec.id = id;
  rec.size = kTestBuff;
  rec.type = type;
  rec.host = host;
  rec.user = user;
  rec.rkey = id * 100;
  return rec;
}

// ---------------------------------------------------------------------------
// BufferDb.
// ---------------------------------------------------------------------------

TEST(BufferDb, InsertFindErase) {
  BufferDb db;
  ASSERT_TRUE(db.Insert(MakeRecord(1, 10, BufferType::kZombie)).ok());
  EXPECT_EQ(db.Insert(MakeRecord(1, 10, BufferType::kZombie)).code(), ErrorCode::kConflict);
  EXPECT_FALSE(db.Insert(MakeRecord(kInvalidBuffer, 10, BufferType::kZombie)).ok());
  ASSERT_TRUE(db.Find(1).has_value());
  EXPECT_EQ(db.Find(1)->host, 10u);
  EXPECT_TRUE(db.Erase(1).ok());
  EXPECT_FALSE(db.Find(1).has_value());
  EXPECT_EQ(db.Erase(1).code(), ErrorCode::kNotFound);
}

TEST(BufferDb, AssignRelease) {
  BufferDb db;
  ASSERT_TRUE(db.Insert(MakeRecord(1, 10, BufferType::kZombie)).ok());
  EXPECT_TRUE(db.Assign(1, 20).ok());
  EXPECT_EQ(db.Assign(1, 21).code(), ErrorCode::kConflict);  // double alloc
  EXPECT_EQ(db.Find(1)->user, 20u);
  EXPECT_TRUE(db.Release(1).ok());
  EXPECT_EQ(db.Find(1)->user, kNilServer);
}

TEST(BufferDb, FreeBuffersFiltersByType) {
  BufferDb db;
  ASSERT_TRUE(db.Insert(MakeRecord(1, 10, BufferType::kZombie)).ok());
  ASSERT_TRUE(db.Insert(MakeRecord(2, 11, BufferType::kActive)).ok());
  ASSERT_TRUE(db.Insert(MakeRecord(3, 10, BufferType::kZombie, /*user=*/20)).ok());
  EXPECT_EQ(db.FreeBuffers().size(), 2u);
  EXPECT_EQ(db.FreeBuffers(BufferType::kZombie).size(), 1u);
  EXPECT_EQ(db.FreeBuffers(BufferType::kZombie)[0].id, 1u);
  EXPECT_EQ(db.free_count(), 2u);
  EXPECT_EQ(db.FreeBytes(), 2 * kTestBuff);
  EXPECT_EQ(db.TotalBytes(), 3 * kTestBuff);
}

TEST(BufferDb, ReclaimOrderFreeFirst) {
  BufferDb db;
  ASSERT_TRUE(db.Insert(MakeRecord(1, 10, BufferType::kZombie, /*user=*/20)).ok());
  ASSERT_TRUE(db.Insert(MakeRecord(2, 10, BufferType::kZombie)).ok());
  ASSERT_TRUE(db.Insert(MakeRecord(3, 10, BufferType::kZombie, /*user=*/21)).ok());
  const auto order = db.ReclaimOrderForHost(10);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].id, 2u);  // the free one first
  EXPECT_EQ(order[1].id, 1u);
  EXPECT_EQ(order[2].id, 3u);
}

TEST(BufferDb, RetypeHostFlipsType) {
  BufferDb db;
  ASSERT_TRUE(db.Insert(MakeRecord(1, 10, BufferType::kActive)).ok());
  ASSERT_TRUE(db.Insert(MakeRecord(2, 11, BufferType::kActive)).ok());
  db.RetypeHost(10, BufferType::kZombie);
  EXPECT_EQ(db.Find(1)->type, BufferType::kZombie);
  EXPECT_EQ(db.Find(2)->type, BufferType::kActive);  // other host untouched
}

TEST(BufferDb, AllocatedCountPerHost) {
  BufferDb db;
  ASSERT_TRUE(db.Insert(MakeRecord(1, 10, BufferType::kZombie, 20)).ok());
  ASSERT_TRUE(db.Insert(MakeRecord(2, 10, BufferType::kZombie)).ok());
  ASSERT_TRUE(db.Insert(MakeRecord(3, 11, BufferType::kZombie, 20)).ok());
  EXPECT_EQ(db.AllocatedCountOfHost(10), 1u);
  EXPECT_EQ(db.AllocatedCountOfHost(11), 1u);
  EXPECT_EQ(db.AllocatedCountOfHost(12), 0u);
}

TEST(BufferDb, SnapshotLoadRoundTrip) {
  BufferDb db;
  ASSERT_TRUE(db.Insert(MakeRecord(1, 10, BufferType::kZombie, 20)).ok());
  ASSERT_TRUE(db.Insert(MakeRecord(2, 11, BufferType::kActive)).ok());
  BufferDb copy;
  copy.Load(db.Snapshot());
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.Find(1)->user, 20u);
  EXPECT_EQ(copy.Find(2)->type, BufferType::kActive);
}

// ---------------------------------------------------------------------------
// GlobalMemoryController.
// ---------------------------------------------------------------------------

std::vector<BufferGrant> MakeGrants(std::size_t n, ServerId host, Bytes size = kTestBuff) {
  std::vector<BufferGrant> grants;
  for (std::size_t i = 0; i < n; ++i) {
    grants.push_back({kInvalidBuffer, /*rkey=*/1000 + i, size, host, BufferType::kZombie});
  }
  return grants;
}

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() : ctr_(ControllerConfig{kTestBuff, true}) {
    for (ServerId s : {kHostA, kHostB, kUserC, kUserD}) {
      ctr_.RegisterServer(s);
    }
  }

  static constexpr ServerId kHostA = 1;
  static constexpr ServerId kHostB = 2;
  static constexpr ServerId kUserC = 3;
  static constexpr ServerId kUserD = 4;
  GlobalMemoryController ctr_;
};

TEST_F(ControllerTest, GotoZombieRegistersBuffers) {
  auto ids = ctr_.GsGotoZombie(kHostA, MakeGrants(4, kHostA));
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids.value().size(), 4u);
  EXPECT_TRUE(ctr_.IsZombie(kHostA));
  EXPECT_EQ(ctr_.ZombieList(), std::vector<ServerId>{kHostA});
  EXPECT_EQ(ctr_.FreeRemoteBytes(), 4 * kTestBuff);
}

TEST_F(ControllerTest, RejectsNonUniformBuffSize) {
  auto grants = MakeGrants(1, kHostA, kTestBuff * 2);
  EXPECT_FALSE(ctr_.GsGotoZombie(kHostA, grants).ok());
}

TEST_F(ControllerTest, RejectsUnregisteredHost) {
  EXPECT_EQ(ctr_.GsGotoZombie(99, MakeGrants(1, 99)).code(), ErrorCode::kNotFound);
}

TEST_F(ControllerTest, AllocExtTakesZombieFirst) {
  ASSERT_TRUE(ctr_.GsGotoZombie(kHostA, MakeGrants(2, kHostA)).ok());
  ASSERT_TRUE(ctr_.DelegateActiveBuffers(kHostB, MakeGrants(2, kHostB)).ok());
  auto grants = ctr_.GsAllocExt(kUserC, 3 * kTestBuff);
  ASSERT_TRUE(grants.ok());
  ASSERT_EQ(grants.value().size(), 3u);
  // Zombie buffers (host A) have strict priority; active fills the rest.
  EXPECT_EQ(grants.value()[0].type, BufferType::kZombie);
  EXPECT_EQ(grants.value()[1].type, BufferType::kZombie);
  EXPECT_EQ(grants.value()[2].type, BufferType::kActive);
}

TEST_F(ControllerTest, AllocExtRoundsUpAndFailsWhenShort) {
  ASSERT_TRUE(ctr_.GsGotoZombie(kHostA, MakeGrants(2, kHostA)).ok());
  // 1.5 buffs worth must round up to 2 buffers.
  auto grants = ctr_.GsAllocExt(kUserC, kTestBuff + kTestBuff / 2);
  ASSERT_TRUE(grants.ok());
  EXPECT_EQ(grants.value().size(), 2u);
  // Nothing left: a guaranteed allocation must fail (and roll back cleanly).
  auto fail = ctr_.GsAllocExt(kUserD, kTestBuff);
  EXPECT_EQ(fail.code(), ErrorCode::kOutOfMemory);
  EXPECT_EQ(ctr_.FreeRemoteBytes(), 0u);
}

TEST_F(ControllerTest, AllocSwapIsBestEffort) {
  ASSERT_TRUE(ctr_.GsGotoZombie(kHostA, MakeGrants(2, kHostA)).ok());
  auto grants = ctr_.GsAllocSwap(kUserC, 5 * kTestBuff);
  ASSERT_TRUE(grants.ok());
  EXPECT_EQ(grants.value().size(), 2u);  // less than asked, no error
  // And swap never takes partial buffers: 0.5 buff request yields nothing.
  auto none = ctr_.GsAllocSwap(kUserD, kTestBuff / 2);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().empty());
}

TEST_F(ControllerTest, ReleaseReturnsToPool) {
  ASSERT_TRUE(ctr_.GsGotoZombie(kHostA, MakeGrants(1, kHostA)).ok());
  auto grants = ctr_.GsAllocExt(kUserC, kTestBuff);
  ASSERT_TRUE(grants.ok());
  EXPECT_EQ(ctr_.FreeRemoteBytes(), 0u);
  ASSERT_TRUE(ctr_.GsRelease(kUserC, {grants.value()[0].id}).ok());
  EXPECT_EQ(ctr_.FreeRemoteBytes(), kTestBuff);
}

TEST_F(ControllerTest, ReleaseByWrongUserRejected) {
  ASSERT_TRUE(ctr_.GsGotoZombie(kHostA, MakeGrants(1, kHostA)).ok());
  auto grants = ctr_.GsAllocExt(kUserC, kTestBuff);
  ASSERT_TRUE(grants.ok());
  EXPECT_FALSE(ctr_.GsRelease(kUserD, {grants.value()[0].id}).ok());
}

// Records US_reclaim notifications.
class RecordingAgents : public AgentDirectory {
 public:
  Status ReclaimFromUser(ServerId user, const std::vector<BufferId>& buffers) override {
    reclaims[user].insert(reclaims[user].end(), buffers.begin(), buffers.end());
    return Status::Ok();
  }
  Bytes RequestActiveDelegation(ServerId, Bytes) override { return 0; }

  std::map<ServerId, std::vector<BufferId>> reclaims;
};

TEST_F(ControllerTest, ReclaimPrefersFreeThenNotifiesUsers) {
  RecordingAgents agents;
  ctr_.set_agents(&agents);
  ASSERT_TRUE(ctr_.GsGotoZombie(kHostA, MakeGrants(3, kHostA)).ok());
  auto grants = ctr_.GsAllocExt(kUserC, kTestBuff);  // takes buffer #1
  ASSERT_TRUE(grants.ok());

  // Reclaim 2: the free pair goes first, no user notification needed.
  auto reclaimed = ctr_.GsReclaim(kHostA, 2);
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_TRUE(agents.reclaims.empty());
  EXPECT_FALSE(ctr_.IsZombie(kHostA));  // reclaiming host is waking

  // Reclaim the last (allocated) one: the user must be told.
  auto last = ctr_.GsReclaim(kHostA, 1);
  ASSERT_TRUE(last.ok());
  ASSERT_EQ(agents.reclaims[kUserC].size(), 1u);
  EXPECT_EQ(agents.reclaims[kUserC][0], grants.value()[0].id);
  EXPECT_EQ(ctr_.FreeRemoteBytes(), 0u);
}

TEST_F(ControllerTest, ReclaimMoreThanDelegatedRejected) {
  ASSERT_TRUE(ctr_.GsGotoZombie(kHostA, MakeGrants(1, kHostA)).ok());
  EXPECT_FALSE(ctr_.GsReclaim(kHostA, 2).ok());
}

TEST_F(ControllerTest, LruZombiePrefersLeastAllocated) {
  ASSERT_TRUE(ctr_.GsGotoZombie(kHostA, MakeGrants(2, kHostA)).ok());
  ASSERT_TRUE(ctr_.GsGotoZombie(kHostB, MakeGrants(2, kHostB)).ok());
  // Three buffers round-robin as A, B, A: host A ends up with 2 allocated,
  // host B with 1 — so B is the cheapest zombie to wake.
  ASSERT_TRUE(ctr_.GsAllocExt(kUserC, 3 * kTestBuff).ok());
  auto lru = ctr_.GsGetLruZombie();
  ASSERT_TRUE(lru.ok());
  EXPECT_EQ(lru.value(), kHostB);
}

TEST_F(ControllerTest, AllocationsSpreadAcrossHosts) {
  // "the memSize allocation is backed by memory from multiple remote
  // servers" — round-robin across zombie hosts.
  ASSERT_TRUE(ctr_.GsGotoZombie(kHostA, MakeGrants(3, kHostA)).ok());
  ASSERT_TRUE(ctr_.GsGotoZombie(kHostB, MakeGrants(3, kHostB)).ok());
  auto grants = ctr_.GsAllocExt(kUserC, 4 * kTestBuff);
  ASSERT_TRUE(grants.ok());
  std::size_t from_a = 0;
  for (const auto& g : grants.value()) {
    from_a += g.host == kHostA ? 1 : 0;
  }
  EXPECT_EQ(from_a, 2u);  // exactly half from each host
}

TEST_F(ControllerTest, LruZombieWithNoZombies) {
  EXPECT_EQ(ctr_.GsGetLruZombie().code(), ErrorCode::kNotFound);
}

TEST_F(ControllerTest, ActiveEscalationViaAgents) {
  // An AgentDirectory that delegates active buffers when asked.
  class LendingAgents : public AgentDirectory {
   public:
    explicit LendingAgents(GlobalMemoryController* c) : ctr(c) {}
    Status ReclaimFromUser(ServerId, const std::vector<BufferId>&) override {
      return Status::Ok();
    }
    Bytes RequestActiveDelegation(ServerId host, Bytes wanted) override {
      const std::size_t n = static_cast<std::size_t>(wanted / kTestBuff);
      (void)ctr->DelegateActiveBuffers(host, MakeGrants(n, host));
      return n * kTestBuff;
    }
    GlobalMemoryController* ctr;
  };
  LendingAgents agents(&ctr_);
  ctr_.set_agents(&agents);

  // Pool empty; GsAllocExt escalates to active servers and succeeds.
  auto grants = ctr_.GsAllocExt(kUserC, 2 * kTestBuff);
  ASSERT_TRUE(grants.ok());
  EXPECT_EQ(grants.value().size(), 2u);
  EXPECT_EQ(grants.value()[0].type, BufferType::kActive);
}

// ---------------------------------------------------------------------------
// SecondaryController: mirroring and failover.
// ---------------------------------------------------------------------------

TEST(Secondary, MirrorsAllOperations) {
  SecondaryController secondary;
  GlobalMemoryController primary(ControllerConfig{kTestBuff, true});
  primary.set_mirror(&secondary);
  primary.RegisterServer(1);
  primary.RegisterServer(2);

  ASSERT_TRUE(primary.GsGotoZombie(1, MakeGrants(2, 1)).ok());
  auto grants = primary.GsAllocExt(2, kTestBuff);
  ASSERT_TRUE(grants.ok());
  EXPECT_GT(secondary.mirrored_ops(), 0u);
  EXPECT_EQ(secondary.replica().size(), 2u);
  EXPECT_EQ(secondary.replica().Find(grants.value()[0].id)->user, 2u);
  EXPECT_TRUE(secondary.IsZombieReplica(1));
}

TEST(Secondary, HeartbeatMissesTriggerFailover) {
  SecondaryController secondary(SecondaryConfig{100 * kMillisecond, 3});
  secondary.ObserveHeartbeat(1);
  EXPECT_FALSE(secondary.MonitorTick());  // saw beat 1
  EXPECT_EQ(secondary.consecutive_misses(), 0);
  // Three silent ticks in a row -> failover.
  EXPECT_FALSE(secondary.MonitorTick());
  EXPECT_FALSE(secondary.MonitorTick());
  EXPECT_TRUE(secondary.MonitorTick());
  EXPECT_TRUE(secondary.failed_over());
}

TEST(Secondary, HeartbeatRecoveryResetsMisses) {
  SecondaryController secondary;
  secondary.ObserveHeartbeat(1);
  secondary.MonitorTick();
  secondary.MonitorTick();  // miss 1
  EXPECT_EQ(secondary.consecutive_misses(), 1);
  secondary.ObserveHeartbeat(2);
  secondary.MonitorTick();
  EXPECT_EQ(secondary.consecutive_misses(), 0);
}

TEST(Secondary, PromoteCarriesFullState) {
  SecondaryController secondary;
  GlobalMemoryController primary(ControllerConfig{kTestBuff, true});
  primary.set_mirror(&secondary);
  primary.RegisterServer(1);
  primary.RegisterServer(2);
  ASSERT_TRUE(primary.GsGotoZombie(1, MakeGrants(2, 1)).ok());
  auto grants = primary.GsAllocExt(2, kTestBuff);
  ASSERT_TRUE(grants.ok());

  auto promoted = secondary.Promote(ControllerConfig{kTestBuff, true});
  EXPECT_TRUE(promoted->IsZombie(1));
  EXPECT_EQ(promoted->FreeRemoteBytes(), kTestBuff);
  // The promoted controller keeps operating: allocate the remaining buffer.
  auto more = promoted->GsAllocExt(2, kTestBuff);
  ASSERT_TRUE(more.ok());
  // Fresh ids must not collide with replicated ones.
  EXPECT_NE(more.value()[0].id, grants.value()[0].id);
}

// ---------------------------------------------------------------------------
// RemoteMemoryManager + RemoteExtent (over a live fabric).
// ---------------------------------------------------------------------------

class ManagerTest : public ::testing::Test {
 protected:
  ManagerTest() : verbs_(&fabric_), ctr_(ControllerConfig{kTestBuff, true}) {
    user_node_ = AttachNode(&user_up_, &user_mem_, "user");
    host_node_ = AttachNode(&host_up_, &host_mem_, "host");
    ctr_.RegisterServer(kUser);
    ctr_.RegisterServer(kHost);
    user_mgr_ = std::make_unique<RemoteMemoryManager>(kUser, &verbs_, user_node_, &ctr_);
    host_mgr_ = std::make_unique<RemoteMemoryManager>(kHost, &verbs_, host_node_, &ctr_);
  }

  rdma::NodeId AttachNode(bool* cpu, bool* mem, std::string name) {
    rdma::NodePort port;
    port.name = std::move(name);
    port.can_initiate = [cpu] { return *cpu; };
    port.memory_accessible = [mem] { return *mem; };
    return fabric_.Attach(std::move(port));
  }

  static constexpr ServerId kUser = 1;
  static constexpr ServerId kHost = 2;
  rdma::Fabric fabric_;
  rdma::Verbs verbs_;
  GlobalMemoryController ctr_;
  bool user_up_ = true, user_mem_ = true, host_up_ = true, host_mem_ = true;
  rdma::NodeId user_node_ = rdma::kInvalidNode;
  rdma::NodeId host_node_ = rdma::kInvalidNode;
  std::unique_ptr<RemoteMemoryManager> user_mgr_;
  std::unique_ptr<RemoteMemoryManager> host_mgr_;
};

TEST_F(ManagerTest, DelegationRegistersBuffersWithController) {
  auto n = host_mgr_->DelegateOnZombie(4 * kTestBuff);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 4u);
  EXPECT_EQ(ctr_.FreeRemoteBytes(), 4 * kTestBuff);
  EXPECT_EQ(host_mgr_->delegated().size(), 4u);
  EXPECT_TRUE(ctr_.IsZombie(kHost));
}

TEST_F(ManagerTest, DelegationBelowBuffSizeRejected) {
  EXPECT_FALSE(host_mgr_->DelegateOnZombie(kTestBuff / 2).ok());
}

TEST_F(ManagerTest, ExtentReadsBackWrittenPage) {
  ASSERT_TRUE(host_mgr_->DelegateOnZombie(2 * kTestBuff).ok());
  host_up_ = false;  // host is now a zombie: CPU off, memory alive
  auto extent = user_mgr_->AllocExtension(2 * kTestBuff);
  ASSERT_TRUE(extent.ok()) << extent.status().ToString();

  std::vector<std::byte> page(kPageSize, std::byte{0x5A});
  ASSERT_TRUE(extent.value()->WritePage(7, page).ok());
  std::vector<std::byte> readback(kPageSize);
  ASSERT_TRUE(extent.value()->ReadPage(7, readback).ok());
  EXPECT_EQ(readback[100], std::byte{0x5A});
  EXPECT_EQ(extent.value()->remote_writes(), 1u);
  EXPECT_EQ(extent.value()->remote_reads(), 1u);
}

TEST_F(ManagerTest, ExtentBoundsChecked) {
  ASSERT_TRUE(host_mgr_->DelegateOnZombie(kTestBuff).ok());
  auto extent = user_mgr_->AllocExtension(kTestBuff);
  ASSERT_TRUE(extent.ok());
  const std::uint64_t beyond = extent.value()->capacity_pages();
  EXPECT_FALSE(extent.value()->WritePage(beyond, {}).ok());
  EXPECT_FALSE(extent.value()->ReadPage(beyond, {}).ok());
}

TEST_F(ManagerTest, ReclaimFallsBackToLocalMirror) {
  ASSERT_TRUE(host_mgr_->DelegateOnZombie(2 * kTestBuff).ok());
  auto extent_result = user_mgr_->AllocExtension(2 * kTestBuff);
  ASSERT_TRUE(extent_result.ok());
  RemoteExtent* extent = extent_result.value();

  std::vector<std::byte> page(kPageSize, std::byte{0x11});
  ASSERT_TRUE(extent->WritePage(3, page).ok());

  // The host wakes and reclaims everything; the controller notifies us via
  // the agent directory — here we deliver the notice directly.
  extent->OnBuffersReclaimed(extent->buffer_ids());

  // The page is still readable, but from the (slower) local mirror.
  std::vector<std::byte> readback(kPageSize);
  auto cost = extent->ReadPage(3, readback);
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(extent->mirror_reads(), 1u);
  EXPECT_GE(cost.value(), 50 * kMicrosecond);  // storage-class latency

  // A page never written before the reclaim is genuinely lost.
  EXPECT_EQ(extent->ReadPage(9, readback).code(), ErrorCode::kNotFound);
}

TEST_F(ManagerTest, RehomeAfterReplacementGrants) {
  ASSERT_TRUE(host_mgr_->DelegateOnZombie(2 * kTestBuff).ok());
  auto extent_result = user_mgr_->AllocExtension(2 * kTestBuff);
  ASSERT_TRUE(extent_result.ok());
  RemoteExtent* extent = extent_result.value();
  ASSERT_TRUE(extent->WritePage(2, {}).ok());

  // Nothing to re-home while the buffers are live.
  EXPECT_EQ(extent->RehomeMirroredPages(), 0u);

  // Reclaim pushes the page into the mirror; with the slot still dead,
  // re-homing cannot happen yet.
  extent->OnBuffersReclaimed(extent->buffer_ids());
  EXPECT_EQ(extent->RehomeMirroredPages(), 0u);
  std::vector<std::byte> buf(kPageSize);
  ASSERT_TRUE(extent->ReadPage(2, buf).ok());
  EXPECT_EQ(extent->mirror_reads(), 1u);
}

TEST_F(ManagerTest, GrowSwapExtentAddsCapacity) {
  ASSERT_TRUE(host_mgr_->DelegateOnZombie(4 * kTestBuff).ok());
  auto extent = user_mgr_->AllocSwap(kTestBuff);
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(extent.value()->capacity(), kTestBuff);
  auto grown = user_mgr_->GrowSwapExtent(extent.value(), 2 * kTestBuff);
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ(grown.value(), 2 * kTestBuff);
  EXPECT_EQ(extent.value()->capacity(), 3 * kTestBuff);
  // A foreign extent pointer is rejected.
  RemoteExtent foreign(&verbs_, user_node_, kTestBuff);
  EXPECT_EQ(user_mgr_->GrowSwapExtent(&foreign, kTestBuff).code(), ErrorCode::kNotFound);
}

TEST_F(ManagerTest, ReclaimOnWakeReleasesRegions) {
  ASSERT_TRUE(host_mgr_->DelegateOnZombie(3 * kTestBuff).ok());
  auto reclaimed = host_mgr_->ReclaimOnWake(2 * kTestBuff);
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_EQ(reclaimed.value(), 2u);
  EXPECT_EQ(host_mgr_->delegated().size(), 1u);
  EXPECT_EQ(ctr_.FreeRemoteBytes(), kTestBuff);
}

TEST_F(ManagerTest, AllocSwapBestEffortSmaller) {
  ASSERT_TRUE(host_mgr_->DelegateOnZombie(kTestBuff).ok());
  auto extent = user_mgr_->AllocSwap(10 * kTestBuff);
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(extent.value()->buffer_count(), 1u);
}

TEST_F(ManagerTest, ReleaseExtentReturnsBuffers) {
  ASSERT_TRUE(host_mgr_->DelegateOnZombie(2 * kTestBuff).ok());
  auto extent = user_mgr_->AllocExtension(2 * kTestBuff);
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(ctr_.FreeRemoteBytes(), 0u);
  ASSERT_TRUE(user_mgr_->ReleaseExtent(extent.value()).ok());
  EXPECT_EQ(ctr_.FreeRemoteBytes(), 2 * kTestBuff);
  EXPECT_EQ(user_mgr_->extent_count(), 0u);
}

TEST_F(ManagerTest, StripingSpreadsPagesAcrossBuffers) {
  ASSERT_TRUE(host_mgr_->DelegateOnZombie(2 * kTestBuff).ok());
  auto extent = user_mgr_->AllocExtension(2 * kTestBuff);
  ASSERT_TRUE(extent.ok());
  const std::uint64_t pages_per_buffer = PagesOf(kTestBuff);
  // Writing one page in each half must succeed and stay independent.
  std::vector<std::byte> a(kPageSize, std::byte{0xAA});
  std::vector<std::byte> b(kPageSize, std::byte{0xBB});
  ASSERT_TRUE(extent.value()->WritePage(0, a).ok());
  ASSERT_TRUE(extent.value()->WritePage(pages_per_buffer, b).ok());
  std::vector<std::byte> read(kPageSize);
  ASSERT_TRUE(extent.value()->ReadPage(pages_per_buffer, read).ok());
  EXPECT_EQ(read[0], std::byte{0xBB});
}

}  // namespace
}  // namespace zombie::remotemem
