// Tests for the online serving mode: the seeded request stream, the
// ServeDaemon's admission/backpressure loop, and fault composition through
// cloud::FaultPlan.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/cloud/faults.h"
#include "src/serve/daemon.h"
#include "src/serve/metrics.h"
#include "src/serve/request.h"
#include "src/serve/stream.h"

namespace zombie::serve {
namespace {

StreamConfig SmallStream() {
  StreamConfig config;
  config.seed = 7;
  config.rate_per_s = 20.0;
  config.horizon = 3 * kSecond;
  config.mean_lifetime = 1 * kSecond;
  config.min_memory = 1 * kGiB;
  config.max_memory = 2 * kGiB;
  config.memory_step = 1 * kGiB;
  config.vcpus = 1;
  return config;
}

// ---------------------------------------------------------------------------
// RequestStream.
// ---------------------------------------------------------------------------

TEST(RequestStream, DeterministicForSameSeed) {
  RequestStream a(SmallStream());
  RequestStream b(SmallStream());
  const auto ta = a.Generate();
  const auto tb = b.Generate();
  ASSERT_EQ(ta.size(), tb.size());
  ASSERT_FALSE(ta.empty());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].at, tb[i].at);
    EXPECT_EQ(ta[i].kind, tb[i].kind);
    EXPECT_EQ(ta[i].tenant, tb[i].tenant);
    EXPECT_EQ(ta[i].vm.id, tb[i].vm.id);
    EXPECT_EQ(ta[i].vm.reserved_memory, tb[i].vm.reserved_memory);
  }
}

TEST(RequestStream, DifferentSeedsDiffer) {
  StreamConfig other = SmallStream();
  other.seed = 8;
  const auto ta = RequestStream(SmallStream()).Generate();
  const auto tb = RequestStream(other).Generate();
  bool same = ta.size() == tb.size();
  if (same) {
    for (std::size_t i = 0; i < ta.size(); ++i) {
      if (ta[i].at != tb[i].at) {
        same = false;
        break;
      }
    }
  }
  EXPECT_FALSE(same);
}

TEST(RequestStream, TimelineSortedAndPairedArriveDepart) {
  const auto timeline = RequestStream(SmallStream()).Generate();
  std::map<hv::VmId, int> arrivals;
  std::map<hv::VmId, int> departures;
  SimTime prev = 0;
  for (const Request& req : timeline) {
    EXPECT_GE(req.at, prev);
    prev = req.at;
    if (req.kind == RequestKind::kArrive) {
      arrivals[req.vm.id]++;
      EXPECT_GT(req.vm.reserved_memory, 0u);
      EXPECT_GT(req.vm.vcpus, 0u);
    } else if (req.kind == RequestKind::kDepart) {
      departures[req.vm.id]++;
    }
  }
  // Every VM arrives exactly once and departs exactly once.
  EXPECT_EQ(arrivals.size(), departures.size());
  for (const auto& [vm, n] : arrivals) {
    EXPECT_EQ(n, 1);
    EXPECT_EQ(departures[vm], 1);
  }
}

TEST(RequestStream, FlashCrowdConcentratesArrivalsInBurst) {
  StreamConfig config = SmallStream();
  config.process = ArrivalProcess::kFlashCrowd;
  config.horizon = 10 * kSecond;
  config.rate_per_s = 10.0;
  config.burst_start = 4 * kSecond;
  config.burst_duration = 2 * kSecond;
  config.burst_multiplier = 8.0;
  RequestStream stream(config);
  EXPECT_NEAR(stream.RateAt(1 * kSecond), 10.0, 1e-9);
  EXPECT_NEAR(stream.RateAt(5 * kSecond), 80.0, 1e-9);
  EXPECT_NEAR(stream.PeakRate(), 80.0, 1e-9);
  std::size_t in_burst = 0;
  std::size_t outside = 0;
  for (const Request& req : stream.Generate()) {
    if (req.kind != RequestKind::kArrive) {
      continue;
    }
    const bool burst =
        req.at >= config.burst_start && req.at < config.burst_start + config.burst_duration;
    (burst ? in_burst : outside)++;
  }
  // 2s at 80/s vs 8s at 10/s: the burst window should out-arrive the rest.
  EXPECT_GT(in_burst, outside);
}

// ---------------------------------------------------------------------------
// ServeDaemon.
// ---------------------------------------------------------------------------

ServeConfig SmallRack() {
  ServeConfig config;
  config.hosts = 1;
  config.zombies = 2;
  config.host_capacity = {.cpus = 8, .memory = 8 * kGiB};
  config.admission_service = 1 * kMillisecond;
  return config;
}

TEST(ServeDaemon, ConservesEveryArrival) {
  ServeDaemon daemon(SmallRack());
  const auto timeline = RequestStream(SmallStream()).Generate();
  ASSERT_TRUE(daemon.Run(timeline).ok());
  ServeMetrics& m = daemon.metrics();
  EXPECT_GT(m.arrivals, 0u);
  // Every arrival is either admitted or shed at the gate (queue-full and
  // queue-timeout sheds happen after admission, so they are not in this sum)...
  const std::uint64_t gate_sheds =
      m.shed[static_cast<std::size_t>(ShedReason::kThrottled)] +
      m.shed[static_cast<std::size_t>(ShedReason::kTenantQuota)] +
      m.shed[static_cast<std::size_t>(ShedReason::kRackBudget)];
  EXPECT_EQ(m.arrivals, m.admitted + gate_sheds);
  // ...and after the full timeline drains nothing is left hosted or queued.
  EXPECT_EQ(daemon.live_vms(), 0u);
  EXPECT_EQ(daemon.queued(), 0u);
  EXPECT_TRUE(daemon.CheckHealth().ok());
  EXPECT_EQ(daemon.admission().admitted_memory(), 0u);
}

TEST(ServeDaemon, BoundedQueueShedsWhenFull) {
  ServeConfig config = SmallRack();
  config.zombies = 0;  // no spare capacity to wake
  // An over-generous gate admits far more than the one host can place, so
  // pressure lands on the bounded queue instead of the rack budget.
  config.admission.memory_headroom = 4.0;
  config.admission.cpu_overcommit = 8.0;
  config.queue_depth = 2;
  config.queue_timeout = 30 * kSecond;  // only the depth bound can shed
  StreamConfig stream = SmallStream();
  stream.rate_per_s = 60.0;
  stream.mean_lifetime = 20 * kSecond;  // hosted VMs never leave in-horizon
  ServeDaemon daemon(config);
  ASSERT_TRUE(daemon.Run(RequestStream(stream).Generate()).ok());
  EXPECT_GT(daemon.metrics().shed[static_cast<std::size_t>(ShedReason::kQueueFull)], 0u);
  EXPECT_TRUE(daemon.CheckHealth().ok());
}

TEST(ServeDaemon, QueueTimeoutShedsAndReleasesAdmission) {
  ServeConfig config = SmallRack();
  config.zombies = 0;
  config.admission.memory_headroom = 4.0;
  config.admission.cpu_overcommit = 8.0;
  config.queue_depth = 64;
  config.queue_timeout = 200 * kMillisecond;
  StreamConfig stream = SmallStream();
  stream.rate_per_s = 40.0;
  stream.mean_lifetime = 20 * kSecond;
  ServeDaemon daemon(config);
  ASSERT_TRUE(daemon.Run(RequestStream(stream).Generate()).ok());
  EXPECT_GT(daemon.metrics().shed[static_cast<std::size_t>(ShedReason::kQueueTimeout)], 0u);
  // Shed requests must release their admission: at drain time the gate's
  // books only hold VMs that are actually placed (none, at the end).
  EXPECT_EQ(daemon.queued(), 0u);
  EXPECT_TRUE(daemon.CheckHealth().ok());
}

TEST(ServeDaemon, BackpressureWakesZombies) {
  ServeConfig config = SmallRack();
  config.hosts = 1;
  config.zombies = 3;
  StreamConfig stream = SmallStream();
  stream.rate_per_s = 40.0;
  stream.mean_lifetime = 30 * kSecond;  // the backlog stays queued until the wake
  ServeDaemon daemon(config);
  const std::size_t asleep_before = daemon.sleeping_zombies().size();
  ASSERT_TRUE(daemon.Run(RequestStream(stream).Generate()).ok());
  EXPECT_GT(daemon.metrics().zombie_wakes, 0u);
  EXPECT_LT(daemon.sleeping_zombies().size(), asleep_before);
  EXPECT_GT(daemon.metrics().migration_stall_ms.count(), 0u);
  EXPECT_TRUE(daemon.CheckHealth().ok());
}

TEST(ServeDaemon, ThrottleShedsAtTypedReason) {
  ServeConfig config = SmallRack();
  config.throttle = {.rate_per_s = 5.0, .burst = 1.0};
  StreamConfig stream = SmallStream();
  stream.rate_per_s = 40.0;
  ServeDaemon daemon(config);
  ASSERT_TRUE(daemon.Run(RequestStream(stream).Generate()).ok());
  EXPECT_GT(daemon.metrics().shed[static_cast<std::size_t>(ShedReason::kThrottled)], 0u);
}

TEST(ServeDaemon, ComposesExternalFaultPlan) {
  ServeDaemon daemon(SmallRack());
  ASSERT_FALSE(daemon.sleeping_zombies().empty());
  cloud::FaultPlan plan;
  plan.events.push_back({.at = 1 * kSecond,
                         .kind = cloud::FaultKind::kHostCrash,
                         .host = daemon.sleeping_zombies().back()});
  plan.events.push_back({.at = 1500 * kMillisecond,
                         .kind = cloud::FaultKind::kControllerCrash,
                         .shard = 0});
  ASSERT_TRUE(daemon.Run(RequestStream(SmallStream()).Generate(), &plan).ok());
  // The crashed zombie's memory must have left the admission budget, the
  // pool must heal with zero orphaned buffers, and the run still drains.
  EXPECT_TRUE(daemon.CheckHealth().ok());
  EXPECT_EQ(daemon.queued(), 0u);
}

TEST(ServeDaemon, RepeatRunsProduceIdenticalMetrics) {
  const auto timeline = RequestStream(SmallStream()).Generate();
  auto run = [&timeline]() {
    ServeDaemon daemon(SmallRack());
    EXPECT_TRUE(daemon.Run(timeline).ok());
    return std::make_tuple(daemon.metrics().admitted, daemon.metrics().placed,
                           daemon.metrics().TotalShed(), daemon.metrics().zombie_wakes,
                           daemon.metrics().admission_wait_ms.Summary().p99,
                           daemon.metrics().placement_ms.Summary().p999);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace zombie::serve
