// Sharded control plane and lease protocol: id-stride ownership, global
// zombie-first allocation across shards, shards=1 equivalence with the
// classic single controller, lease grant/renew/expiry semantics, expiry
// cleanup (orphaned buffers must be 0), deferred cleanup while a shard's
// primary is down, per-shard failover, and the detailed escalation statuses
// of GS_reclaim / GS_alloc_ext.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/remotemem/global_controller.h"
#include "src/remotemem/lease.h"
#include "src/remotemem/sharded_plane.h"

namespace zombie::remotemem {
namespace {

constexpr Bytes kBuff = 4 * kMiB;

std::vector<BufferGrant> MakeGrants(std::size_t n, ServerId host, Bytes size = kBuff) {
  std::vector<BufferGrant> grants;
  for (std::size_t i = 0; i < n; ++i) {
    grants.push_back({kInvalidBuffer, /*rkey=*/1000 + i, size, host, BufferType::kZombie});
  }
  return grants;
}

// ---------------------------------------------------------------------------
// LeaseManager.
// ---------------------------------------------------------------------------

TEST(LeaseManager, GrantRenewExpireEpochs) {
  LeaseManager leases(LeaseConfig{.ttl = 300});
  EXPECT_EQ(leases.Grant(7, 0), 1u);
  EXPECT_TRUE(leases.IsLive(7, 300));   // deadline is inclusive
  EXPECT_FALSE(leases.IsLive(7, 301));

  // Renewal pushes the deadline; epoch is unchanged.
  EXPECT_TRUE(leases.Renew(7, 200).ok());
  EXPECT_TRUE(leases.IsLive(7, 500));
  EXPECT_EQ(leases.epoch(7), 1u);

  // Expiry sweep reports each lapsed host once, in ascending order.
  leases.Grant(3, 200);
  auto lapsed = leases.ExpireDue(501);
  ASSERT_EQ(lapsed.size(), 2u);
  EXPECT_EQ(lapsed[0], 3u);
  EXPECT_EQ(lapsed[1], 7u);
  EXPECT_TRUE(leases.ExpireDue(600).empty());

  // An expired lease cannot be renewed, only re-granted (epoch bump).
  EXPECT_EQ(leases.Renew(7, 600).code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(leases.Touch(7, 600), 2u);
  EXPECT_TRUE(leases.IsLive(7, 700));
  // Touch on a live lease renews without an epoch bump.
  EXPECT_EQ(leases.Touch(7, 700), 2u);
  // Never-granted hosts: Renew fails, epoch is 0.
  EXPECT_EQ(leases.Renew(99, 0).code(), ErrorCode::kNotFound);
  EXPECT_EQ(leases.epoch(99), 0u);
}

// ---------------------------------------------------------------------------
// Sharded plane fixture: 4 hosts + 2 users on a configurable shard count.
// ---------------------------------------------------------------------------

class ShardedPlaneTest : public ::testing::Test {
 protected:
  static constexpr ServerId kZ1 = 1, kZ2 = 2, kZ3 = 3, kZ4 = 4;
  static constexpr ServerId kUserA = 5, kUserB = 6;

  static ShardedControlPlane MakePlane(std::size_t shards) {
    PlaneConfig config;
    config.buff_size = kBuff;
    config.shards = shards;
    ShardedControlPlane plane(config);
    for (ServerId s : {kZ1, kZ2, kZ3, kZ4, kUserA, kUserB}) {
      plane.RegisterServer(s);
      plane.GrantLease(s, 0);
    }
    return plane;
  }
};

TEST_F(ShardedPlaneTest, IdStrideOwnershipRoutesToHomeShard) {
  auto plane = MakePlane(3);
  for (ServerId host : {kZ1, kZ2, kZ3, kZ4}) {
    auto ids = plane.GsGotoZombie(host, MakeGrants(3, host));
    ASSERT_TRUE(ids.ok());
    const std::size_t home = plane.ShardOfHost(host);
    for (BufferId id : ids.value()) {
      // Minted ids carry the home shard's residue, so ownership of any id
      // is computable without a lookup table.
      EXPECT_EQ(plane.ShardOfBuffer(id), home);
      EXPECT_TRUE(plane.primary(home).db().Find(id).has_value());
    }
  }
  // Every shard holds only its own residue class.
  EXPECT_TRUE(plane.CheckInvariants().ok());
  for (std::size_t k = 0; k < plane.shard_count(); ++k) {
    for (const auto& rec : plane.primary(k).db().records()) {
      EXPECT_EQ(plane.ShardOfBuffer(rec.id), k);
    }
  }
}

TEST_F(ShardedPlaneTest, ZombieMemoryBeatsActiveAcrossShards) {
  auto plane = MakePlane(2);
  // Zombie memory on shard 0 only (host 1); active slack on both shards.
  ASSERT_TRUE(plane.GsGotoZombie(kZ1, MakeGrants(2, kZ1)).ok());
  auto active1 = MakeGrants(2, kZ2);
  auto active2 = MakeGrants(2, kZ3);
  ASSERT_TRUE(plane.DelegateActiveBuffers(kZ2, active1).ok());
  ASSERT_TRUE(plane.DelegateActiveBuffers(kZ3, active2).ok());

  // kUserB's home shard is 1, which holds NO zombie memory — the plane must
  // still hand out every zombie buffer (shard 0) before any active one.
  auto grants = plane.GsAllocExt(kUserB, 3 * kBuff);
  ASSERT_TRUE(grants.ok());
  ASSERT_EQ(grants.value().size(), 3u);
  EXPECT_EQ(grants.value()[0].type, BufferType::kZombie);
  EXPECT_EQ(grants.value()[1].type, BufferType::kZombie);
  EXPECT_EQ(grants.value()[2].type, BufferType::kActive);
  EXPECT_TRUE(plane.CheckInvariants().ok());
}

TEST_F(ShardedPlaneTest, SingleShardMatchesClassicController) {
  auto plane = MakePlane(1);
  GlobalMemoryController classic(ControllerConfig{.buff_size = kBuff});
  for (ServerId s : {kZ1, kZ2, kZ3, kZ4, kUserA, kUserB}) {
    classic.RegisterServer(s);
  }
  auto plane_ids = plane.GsGotoZombie(kZ1, MakeGrants(3, kZ1));
  auto classic_ids = classic.GsGotoZombie(kZ1, MakeGrants(3, kZ1));
  ASSERT_TRUE(plane_ids.ok());
  ASSERT_TRUE(classic_ids.ok());
  EXPECT_EQ(plane_ids.value(), classic_ids.value());  // classic 1, 2, 3...

  auto plane_grants = plane.GsAllocExt(kUserA, 2 * kBuff);
  auto classic_grants = classic.GsAllocExt(kUserA, 2 * kBuff);
  ASSERT_TRUE(plane_grants.ok());
  ASSERT_TRUE(classic_grants.ok());
  ASSERT_EQ(plane_grants.value().size(), classic_grants.value().size());
  for (std::size_t i = 0; i < plane_grants.value().size(); ++i) {
    EXPECT_EQ(plane_grants.value()[i].id, classic_grants.value()[i].id);
    EXPECT_EQ(plane_grants.value()[i].host, classic_grants.value()[i].host);
  }
}

// Records US_reclaim notices; lends nothing.
class RecordingAgents final : public AgentDirectory {
 public:
  Status ReclaimFromUser(ServerId user, const std::vector<BufferId>& buffers) override {
    for (BufferId id : buffers) {
      reclaimed.emplace_back(user, id);
    }
    return Status::Ok();
  }
  Bytes RequestActiveDelegation(ServerId, Bytes) override { return 0; }

  std::vector<std::pair<ServerId, BufferId>> reclaimed;
};

TEST_F(ShardedPlaneTest, LeaseExpiryCleansUpWithoutOrphans) {
  auto plane = MakePlane(2);
  RecordingAgents agents;
  plane.set_agents(&agents);
  ASSERT_TRUE(plane.GsGotoZombie(kZ1, MakeGrants(3, kZ1)).ok());
  ASSERT_TRUE(plane.GsGotoZombie(kZ2, MakeGrants(3, kZ2)).ok());
  auto grants = plane.GsAllocExt(kUserA, 4 * kBuff);
  ASSERT_TRUE(grants.ok());

  // Everyone but kZ1 renews; kZ1's lease lapses at the deadline sweep.
  const SimTime later = 250 * kMillisecond;
  for (ServerId s : {kZ2, kZ3, kZ4, kUserA, kUserB}) {
    plane.RenewLease(s, later);
  }
  auto expired = plane.ExpireLeases(400 * kMillisecond);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].host, kZ1);
  EXPECT_EQ(expired[0].hosted_dropped.size(), 3u);  // all of kZ1's buffers
  EXPECT_TRUE(expired[0].used_released.empty());    // kZ1 consumed nothing

  // Users of the dead host's allocated buffers got US_reclaim notices.
  EXPECT_FALSE(agents.reclaimed.empty());
  for (const auto& [user, id] : agents.reclaimed) {
    EXPECT_EQ(user, kUserA);
    EXPECT_EQ(plane.ShardOfBuffer(id), plane.ShardOfHost(kZ1));
  }
  // The invariant the fault scenarios gate on: nothing orphaned, state sane.
  EXPECT_TRUE(plane.OrphanedBuffers(400 * kMillisecond).empty());
  EXPECT_TRUE(plane.CheckInvariants().ok());
  EXPECT_FALSE(plane.IsZombie(kZ1));
}

TEST_F(ShardedPlaneTest, ExpiryCleanupDefersWhileShardPrimaryIsDown) {
  auto plane = MakePlane(2);
  RecordingAgents agents;
  plane.set_agents(&agents);
  ASSERT_TRUE(plane.GsGotoZombie(kZ1, MakeGrants(2, kZ1)).ok());

  // kZ1's home shard primary dies, then kZ1's lease lapses: the cleanup
  // cannot run against a frozen shard, so it is deferred.
  const std::size_t home = plane.ShardOfHost(kZ1);
  plane.FailShardPrimary(home);
  for (ServerId s : {kZ2, kZ3, kZ4, kUserA, kUserB}) {
    plane.RenewLease(s, 250 * kMillisecond);
  }
  auto expired = plane.ExpireLeases(400 * kMillisecond);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_TRUE(expired[0].hosted_dropped.empty());  // deferred, nothing dropped

  // Shard recovers; the next sweep completes the deferred cleanup.
  plane.ReviveShardPrimary(home);
  auto second = plane.ExpireLeases(500 * kMillisecond);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].host, kZ1);
  EXPECT_EQ(second[0].hosted_dropped.size(), 2u);
  EXPECT_TRUE(plane.OrphanedBuffers(500 * kMillisecond).empty());
  EXPECT_TRUE(plane.CheckInvariants().ok());
}

TEST_F(ShardedPlaneTest, ShardFailoverPromotesSecondaryAndPreservesState) {
  auto plane = MakePlane(2);
  ASSERT_TRUE(plane.GsGotoZombie(kZ1, MakeGrants(3, kZ1)).ok());
  auto grants = plane.GsAllocExt(kUserA, 2 * kBuff);
  ASSERT_TRUE(grants.ok());

  const std::size_t home = plane.ShardOfHost(kZ1);
  plane.FailShardPrimary(home);
  EXPECT_FALSE(plane.shard_alive(home));
  // Calls routed to the dead shard fail fast and name it.
  auto blocked = plane.GsGotoZombie(kZ1, MakeGrants(1, kZ1));
  EXPECT_EQ(blocked.code(), ErrorCode::kUnavailable);
  EXPECT_NE(blocked.status().message().find("shard"), std::string::npos);

  // The warm secondary notices the missed beats and promotes its replica.
  std::vector<std::size_t> promoted;
  for (int i = 0; i < 3 && promoted.empty(); ++i) {
    promoted = plane.PumpHeartbeats();
  }
  ASSERT_EQ(promoted.size(), 1u);
  EXPECT_EQ(promoted[0], home);
  EXPECT_TRUE(plane.shard_alive(home));

  // The promoted primary carries the full replica: our allocation is still
  // tracked, release round-trips, invariants hold.
  EXPECT_TRUE(plane.GsRelease(kUserA, {grants.value()[0].id}).ok());
  EXPECT_FALSE(plane.GsRelease(kUserB, {grants.value()[1].id}).ok());
  EXPECT_TRUE(plane.CheckInvariants().ok());
  // The other shard's pair was never disturbed.
  EXPECT_FALSE(plane.secondary(1 - home).failed_over());
}

// ---------------------------------------------------------------------------
// Detailed escalation statuses (which buffers / which hosts failed).
// ---------------------------------------------------------------------------

// Refuses US_reclaim, lends nothing: both escalation paths fail.
class RefusingAgents final : public AgentDirectory {
 public:
  Status ReclaimFromUser(ServerId user, const std::vector<BufferId>&) override {
    return Status(ErrorCode::kUnavailable,
                  "agent " + std::to_string(user) + " unreachable");
  }
  Bytes RequestActiveDelegation(ServerId, Bytes) override { return 0; }
};

TEST(ControllerEscalation, GsReclaimNamesFailedUsersAndBuffers) {
  GlobalMemoryController ctr(ControllerConfig{.buff_size = kBuff});
  RefusingAgents agents;
  ctr.set_agents(&agents);
  for (ServerId s : {1, 2}) {
    ctr.RegisterServer(s);
  }
  auto ids = ctr.GsGotoZombie(1, MakeGrants(2, 1));
  ASSERT_TRUE(ids.ok());
  ASSERT_TRUE(ctr.GsAllocExt(2, 2 * kBuff).ok());  // both buffers now used

  // Reclaiming allocated buffers needs US_reclaim; the agent refuses, so the
  // status names the user and the exact buffers, and nothing is erased.
  auto reclaimed = ctr.GsReclaim(1, 2);
  ASSERT_FALSE(reclaimed.ok());
  EXPECT_EQ(reclaimed.code(), ErrorCode::kUnavailable);
  const std::string message = reclaimed.status().message();
  EXPECT_NE(message.find("US_reclaim failed for user 2"), std::string::npos) << message;
  for (BufferId id : ids.value()) {
    EXPECT_NE(message.find(std::to_string(id)), std::string::npos) << message;
  }
  EXPECT_EQ(ctr.db().size(), 2u);  // failed reclaim left the db untouched
  EXPECT_EQ(ctr.db().free_count(), 0u);
}

TEST(ControllerEscalation, GsAllocExtReportsEscalationLedger) {
  GlobalMemoryController ctr(ControllerConfig{.buff_size = kBuff});
  RefusingAgents agents;
  ctr.set_agents(&agents);
  for (ServerId s : {1, 2, 3}) {
    ctr.RegisterServer(s);
  }
  ASSERT_TRUE(ctr.GsGotoZombie(1, MakeGrants(1, 1)).ok());

  // Want 3, pool holds 1, escalation to hosts 2 (host 3 is the user) lends
  // nothing: the failure itemises every AS_get_free_mem result.
  auto grants = ctr.GsAllocExt(3, 3 * kBuff);
  ASSERT_FALSE(grants.ok());
  EXPECT_EQ(grants.code(), ErrorCode::kOutOfMemory);
  const std::string message = grants.status().message();
  EXPECT_NE(message.find("wanted 3 buffers, granted 1"), std::string::npos) << message;
  EXPECT_NE(message.find("AS_get_free_mem(host 2) -> 0 B"), std::string::npos) << message;
  EXPECT_EQ(message.find("AS_get_free_mem(host 3)"), std::string::npos) << message;
  // All-or-nothing: the one granted buffer was rolled back.
  EXPECT_EQ(ctr.FreeRemoteBytes(), kBuff);
}

TEST(ControllerEscalation, DisabledEscalationSaysSo) {
  GlobalMemoryController ctr(
      ControllerConfig{.buff_size = kBuff, .allow_escalation = false});
  ctr.RegisterServer(1);
  auto grants = ctr.GsAllocExt(1, kBuff);
  ASSERT_FALSE(grants.ok());
  EXPECT_NE(grants.status().message().find("escalation disabled"), std::string::npos);
}

}  // namespace
}  // namespace zombie::remotemem
