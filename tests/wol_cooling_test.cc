// Tests for the Wake-on-LAN fabric path and the cooling (partial-PUE) model
// plus the DC simulator's new consolidation-cost metrics.
#include <gtest/gtest.h>

#include "src/cloud/rack.h"
#include "src/sim/cooling.h"
#include "src/sim/dc_sim.h"
#include "src/sim/trace.h"

namespace zombie {
namespace {

// ---------------------------------------------------------------------------
// Wake-on-LAN through the fabric.
// ---------------------------------------------------------------------------

class WolTest : public ::testing::Test {
 protected:
  WolTest() {
    cloud::RackConfig config;
    config.buff_size = 4 * kMiB;
    config.materialize_memory = false;
    rack_ = std::make_unique<cloud::Rack>(config);
    auto profile = acpi::MachineProfile::HpCompaqElite8300();
    waker_ = &rack_->AddServer("waker", profile, {8, 16 * kGiB});
    sleeper_ = &rack_->AddServer("sleeper", profile, {8, 16 * kGiB});
  }

  std::unique_ptr<cloud::Rack> rack_;
  cloud::Server* waker_ = nullptr;
  cloud::Server* sleeper_ = nullptr;
};

TEST_F(WolTest, MagicPacketWakesZombie) {
  ASSERT_TRUE(rack_->PushToZombie(sleeper_->id()).ok());
  auto cost = rack_->fabric().SendWakePacket(waker_->node(), sleeper_->node());
  ASSERT_TRUE(cost.ok()) << cost.status().ToString();
  EXPECT_EQ(sleeper_->machine().state(), acpi::SleepState::kS0);
  // Packet flight is negligible against the Sz exit latency.
  EXPECT_GE(cost.value(), 4 * kSecond);
  // Lent memory was reclaimed on wake (the rack's on-wake handler).
  EXPECT_EQ(sleeper_->lent_memory(), 0u);
}

TEST_F(WolTest, MagicPacketWakesS3Sleeper) {
  ASSERT_TRUE(rack_->PushToSleep(sleeper_->id(), acpi::SleepState::kS3).ok());
  ASSERT_TRUE(rack_->fabric().SendWakePacket(waker_->node(), sleeper_->node()).ok());
  EXPECT_EQ(sleeper_->machine().state(), acpi::SleepState::kS0);
}

TEST_F(WolTest, AwakeTargetNotArmed) {
  auto cost = rack_->fabric().SendWakePacket(waker_->node(), sleeper_->node());
  EXPECT_FALSE(cost.ok());  // S0: WoL not armed
  EXPECT_EQ(cost.code(), ErrorCode::kUnavailable);
}

TEST_F(WolTest, SuspendedInitiatorCannotSendWake) {
  ASSERT_TRUE(rack_->PushToZombie(sleeper_->id()).ok());
  ASSERT_TRUE(waker_->machine().Suspend(acpi::SleepState::kS3).ok());
  auto cost = rack_->fabric().SendWakePacket(waker_->node(), sleeper_->node());
  EXPECT_EQ(cost.code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(sleeper_->machine().state(), acpi::SleepState::kSz);  // still asleep
}

// ---------------------------------------------------------------------------
// Cooling model.
// ---------------------------------------------------------------------------

TEST(Cooling, PueGrowsWithLoad) {
  // Staged cooling: overhead per IT watt grows with thermal load, so the
  // lightly-loaded (consolidated) facility cools each remaining watt more
  // cheaply — the footnote-1 amplification.
  EXPECT_LT(sim::PueAt(0.0), sim::PueAt(0.5));
  EXPECT_LT(sim::PueAt(0.5), sim::PueAt(1.0));
  EXPECT_NEAR(sim::PueAt(1.0), 1.35, 1e-9);
  EXPECT_NEAR(sim::PueAt(0.0), 1.10, 1e-9);
  // Clamped outside [0,1].
  EXPECT_DOUBLE_EQ(sim::PueAt(2.0), sim::PueAt(1.0));
  EXPECT_DOUBLE_EQ(sim::PueAt(-1.0), sim::PueAt(0.0));
}

TEST(Cooling, FacilityEnergyScalesWithPue) {
  const double it = 100.0;
  EXPECT_NEAR(sim::FacilityEnergy(it, 1.0), 135.0, 1e-9);
  EXPECT_LT(sim::FacilityEnergy(it, 0.1), sim::FacilityEnergy(it, 0.9));
}

// ---------------------------------------------------------------------------
// DC simulator: facility savings and consolidation cost metrics.
// ---------------------------------------------------------------------------

TEST(DcCooling, FacilitySavingsExceedItSavings) {
  sim::TraceConfig config;
  config.seed = 99;
  config.servers = 40;
  config.tasks = 600;
  config.horizon = 12 * kHour;
  const sim::Trace trace = sim::GenerateTrace(config);
  const auto results =
      sim::RunAllPolicies(trace, acpi::MachineProfile::HpCompaqElite8300());
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i].facility_saving_percent, results[i].saving_percent - 0.5)
        << sim::PolicyName(results[i].policy);
    EXPECT_GT(results[i].facility_energy_units, results[i].energy_units);
  }
  // Baseline facility energy uses the PUE too.
  EXPECT_GT(results[0].facility_energy_units, results[0].energy_units);
  EXPECT_NEAR(results[0].facility_saving_percent, 0.0, 1e-9);
}

TEST(DcCooling, ConsolidationCausesWakeupsNotAlwaysOn) {
  sim::TraceConfig config;
  config.seed = 99;
  config.servers = 40;
  config.tasks = 600;
  config.horizon = 12 * kHour;
  const sim::Trace trace = sim::GenerateTrace(config);
  const auto profile = acpi::MachineProfile::HpCompaqElite8300();
  const auto always_on = sim::RunPolicy(trace, sim::Policy::kAlwaysOn, profile);
  EXPECT_EQ(always_on.wakeups, 0u);
  const auto zombie = sim::RunPolicy(trace, sim::Policy::kZombieStack, profile);
  EXPECT_GT(zombie.wakeups, 0u);  // packed tight: arrivals must wake servers
}

}  // namespace
}  // namespace zombie
