// Tests for the diff regression gate (PR 6): tolerance parsing (CLI specs
// and the tolerances file), violation counting in DiffReportDocs (absolute /
// percent / ignore tolerances, the old=0 percent policy, structural changes,
// duplicate scenario names, non-string axis values), and the zombieland CLI
// exit-code contract — including the `run` satellites (duplicate names
// rejected, all failures reported while successful reports still emit).
//
// This TU registers its own gate_ok / gate_fail scenarios; registration is
// per-binary, so they exist only here and `run --all` in other suites is
// unaffected.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/report.h"
#include "src/common/result.h"
#include "src/scenario/diff.h"
#include "src/scenario/driver.h"
#include "src/scenario/registry.h"
#include "src/scenario/scenario.h"

namespace zombie::scenario {
namespace {

using report::Report;

ZOMBIE_REGISTER_SCENARIO(
    ScenarioBuilder("gate_ok").Title("always succeeds").Runner(
        [](const RunContext& ctx) -> Result<Report> {
          Report r = ctx.MakeReport();
          r.Metric("m", 1.0);
          return r;
        }));

ZOMBIE_REGISTER_SCENARIO(
    ScenarioBuilder("gate_fail").Title("always fails").Runner(
        [](const RunContext&) -> Result<Report> {
          return Result<Report>(ErrorCode::kUnavailable, "deliberate test failure");
        }));

// ---------------------------------------------------------------------------
// Tolerance specs.
// ---------------------------------------------------------------------------

TEST(ParseToleranceTest, ParsesTheThreeKinds) {
  auto absolute = ParseTolerance("0.01");
  ASSERT_TRUE(absolute.ok());
  EXPECT_EQ(absolute.value().kind, Tolerance::Kind::kAbsolute);
  EXPECT_EQ(absolute.value().value, 0.01);
  EXPECT_EQ(absolute.value().text, "0.01");

  auto exact = ParseTolerance("0");
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact.value().kind, Tolerance::Kind::kAbsolute);
  EXPECT_EQ(exact.value().value, 0.0);

  auto percent = ParseTolerance("5%");
  ASSERT_TRUE(percent.ok());
  EXPECT_EQ(percent.value().kind, Tolerance::Kind::kPercent);
  EXPECT_EQ(percent.value().value, 5.0);

  auto ignore = ParseTolerance("ignore");
  ASSERT_TRUE(ignore.ok());
  EXPECT_EQ(ignore.value().kind, Tolerance::Kind::kIgnore);
}

TEST(ParseToleranceTest, RejectsMalformedSpecs) {
  for (const char* bad : {"", "%", "5%%", "abc", "-1", "-2%", "nan", "inf",
                          "1e999", "0.5 ", " 0.5"}) {
    EXPECT_FALSE(ParseTolerance(bad).ok()) << "'" << bad << "'";
  }
}

TEST(ParseToleranceFileTest, ParsesAFullFile) {
  auto options = ParseToleranceFile(
      "{\"schema\": \"zombieland.diff.tolerances/v1\", \"default\": \"1%\", "
      "\"metrics\": {\"wall_seconds\": \"ignore\", \"joules\": \"0.5\"}}",
      "tolerances.json");
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_EQ(options.value().default_tolerance.kind, Tolerance::Kind::kPercent);
  ASSERT_EQ(options.value().metric_tolerances.size(), 2u);
  EXPECT_EQ(options.value().metric_tolerances.at("wall_seconds").kind,
            Tolerance::Kind::kIgnore);
  EXPECT_EQ(options.value().metric_tolerances.at("joules").value, 0.5);
}

TEST(ParseToleranceFileTest, EmptyObjectMeansExactMatch) {
  auto options = ParseToleranceFile("{}", "f");
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options.value().default_tolerance.kind, Tolerance::Kind::kAbsolute);
  EXPECT_EQ(options.value().default_tolerance.value, 0.0);
  EXPECT_TRUE(options.value().metric_tolerances.empty());
}

TEST(ParseToleranceFileTest, RejectsBadFiles) {
  // Malformed JSON, wrong shape, wrong schema, unknown keys (typo defence),
  // and bad specs inside — all errors, all naming the file.
  for (const char* bad :
       {"not json", "[1]", "{\"schema\": \"something/else\"}",
        "{\"defualt\": \"5%\"}", "{\"default\": 5}",
        "{\"metrics\": [\"m\"]}", "{\"metrics\": {\"m\": 1}}",
        "{\"metrics\": {\"m\": \"bogus\"}}"}) {
    auto options = ParseToleranceFile(bad, "tolerances.json");
    EXPECT_FALSE(options.ok()) << bad;
    EXPECT_NE(options.status().ToString().find("tolerances.json"),
              std::string::npos)
        << options.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// Violation counting.
// ---------------------------------------------------------------------------

// A single-report document with one scenario-level metric.
std::string Doc(const std::string& metrics) {
  return "{\"scenario\": \"s\", \"metrics\": {" + metrics + "}}";
}

DiffOptions WithTolerance(const std::string& metric, const std::string& spec) {
  DiffOptions options;
  options.metric_tolerances[metric] = ParseTolerance(spec).value();
  return options;
}

TEST(DiffGateTest, WithinAbsoluteToleranceIsOk) {
  auto diff = DiffReportDocs(Doc("\"m\": 100"), Doc("\"m\": 100.005"),
                             WithTolerance("m", "0.01"));
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff.value().violations, 0u);
  ASSERT_EQ(diff.value().report.tables()[0].rows().size(), 1u);
  EXPECT_EQ(diff.value().report.tables()[0].rows()[0][8], "ok");
}

TEST(DiffGateTest, BeyondAbsoluteToleranceFails) {
  auto diff = DiffReportDocs(Doc("\"m\": 100"), Doc("\"m\": 100.02"),
                             WithTolerance("m", "0.01"));
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff.value().violations, 1u);
  EXPECT_EQ(diff.value().report.tables()[0].rows()[0][8], "FAIL");
}

TEST(DiffGateTest, PercentToleranceBoundsRelativeMovement) {
  auto within = DiffReportDocs(Doc("\"m\": 100"), Doc("\"m\": 104"),
                               WithTolerance("m", "5%"));
  ASSERT_TRUE(within.ok());
  EXPECT_EQ(within.value().violations, 0u);
  auto beyond = DiffReportDocs(Doc("\"m\": 100"), Doc("\"m\": 106"),
                               WithTolerance("m", "5%"));
  ASSERT_TRUE(beyond.ok());
  EXPECT_EQ(beyond.value().violations, 1u);
}

TEST(DiffGateTest, PercentToleranceCannotExcuseAChangeFromZero) {
  // old == 0 has no base for a relative bound: any movement fails, and the
  // delta % column shows "n/a" rather than a made-up number.
  auto diff = DiffReportDocs(Doc("\"m\": 0"), Doc("\"m\": 0.001"),
                             WithTolerance("m", "50%"));
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff.value().violations, 1u);
  const auto& row = diff.value().report.tables()[0].rows()[0];
  EXPECT_EQ(row[6], "n/a");
  EXPECT_EQ(row[8], "FAIL");
}

TEST(DiffGateTest, IgnoredMetricsAreNeverComparedAndTheirRemovalIsExcused) {
  auto diff = DiffReportDocs(Doc("\"m\": 1, \"noise\": 7"),
                             Doc("\"m\": 1, \"noise\": 9"),
                             WithTolerance("noise", "ignore"));
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff.value().violations, 0u);
  EXPECT_TRUE(diff.value().report.tables()[0].rows().empty());
  auto removed = DiffReportDocs(Doc("\"m\": 1, \"noise\": 7"), Doc("\"m\": 1"),
                                WithTolerance("noise", "ignore"));
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value().violations, 0u);
}

TEST(DiffGateTest, MetricAddedAndRemovedAreGateViolations) {
  auto diff = DiffReportDocs(Doc("\"m\": 1, \"gone\": 2"),
                             Doc("\"m\": 1, \"fresh\": 3"));
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff.value().violations, 2u);
  const std::string text = diff.value().report.RenderTableText();
  EXPECT_NE(text.find("metric added: s fresh"), std::string::npos) << text;
  EXPECT_NE(text.find("metric removed: s gone"), std::string::npos) << text;
}

TEST(DiffGateTest, DuplicateScenarioNamesAreNotedAndFail) {
  const std::string combined =
      "{\"schema\": \"zombieland.scenario.reports/v1\", \"reports\": [" +
      Doc("\"m\": 1") + "," + Doc("\"m\": 2") + "]}";
  auto diff = DiffReportDocs(combined, combined);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff.value().violations, 2u);  // one per document
  EXPECT_NE(
      diff.value().report.RenderTableText().find("duplicate scenario 's'"),
      std::string::npos);
}

TEST(DiffGateTest, NumericAndBooleanAxisValuesKeyPoints) {
  // Other producers may emit numeric axes; they must key distinctly, not
  // collapse onto one key (the empty-key collision regression).
  auto point_doc = [](double value) {
    return "{\"scenario\": \"s\", \"metrics\": {}, \"points\": ["
           "{\"axes\": {\"depth\": 3, \"pinned\": true}, \"metrics\": {\"m\": " +
           report::JsonNumber(value) + "}}]}";
  };
  auto diff = DiffReportDocs(point_doc(1.0), point_doc(2.0));
  ASSERT_TRUE(diff.ok());
  ASSERT_EQ(diff.value().report.tables()[0].rows().size(), 1u);
  EXPECT_EQ(diff.value().report.tables()[0].rows()[0][1], "depth=3,pinned=true");
  EXPECT_EQ(diff.value().violations, 1u);
}

TEST(DiffGateTest, UnrenderableAxisValuesSkipThePointLoudly) {
  const std::string doc =
      "{\"scenario\": \"s\", \"metrics\": {}, \"points\": ["
      "{\"axes\": {\"shape\": {\"x\": 1}}, \"metrics\": {\"m\": 1}}]}";
  auto diff = DiffReportDocs(doc, doc);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff.value().violations, 2u);  // one skipped point per document
  EXPECT_NE(diff.value().report.RenderTableText().find("no stable rendering"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// The CLI exit-code contract, in process via ZombielandMain.
// ---------------------------------------------------------------------------

int RunCli(std::vector<std::string> args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& arg : args) {
    argv.push_back(arg.data());
  }
  return ZombielandMain(static_cast<int>(argv.size()), argv.data());
}

// Writes `text` to /tmp and returns the path; tests overwrite freely.
std::string TempFile(const std::string& name, const std::string& text) {
  const std::string path = "/tmp/zombieland_diff_gate_" + name;
  std::FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  if (f != nullptr) {
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  return path;
}

std::string ReadAll(const std::string& path) {
  std::string out;
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    char buf[1 << 12];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      out.append(buf, n);
    }
    std::fclose(f);
  }
  return out;
}

// ctest may run the tests of this binary as concurrent processes, so every
// test tags its temp files with a unique prefix — a shared path would be
// truncated by one test while another reads it.
struct GateFiles {
  explicit GateFiles(const std::string& tag)
      : old_doc(TempFile(tag + "_old.json", Doc("\"m\": 100, \"gone\": 1"))),
        same_doc(TempFile(tag + "_same.json", Doc("\"m\": 100, \"gone\": 1"))),
        moved_doc(TempFile(tag + "_moved.json", Doc("\"m\": 104, \"gone\": 1"))),
        out("/tmp/zombieland_diff_gate_" + tag + "_out.txt") {}
  std::string old_doc;
  std::string same_doc;
  std::string moved_doc;
  std::string out;
};

TEST(CliExitCodeTest, SelfDiffIsCleanUnderTheGate) {
  GateFiles files("selfdiff");
  EXPECT_EQ(RunCli({"zombieland", "diff", "--fail-on-delta", files.old_doc,
                    files.same_doc, "--out=" + files.out}),
            0);
  EXPECT_NE(ReadAll(files.out).find("0 changed"), std::string::npos);
}

TEST(CliExitCodeTest, WithinToleranceExitsZeroBeyondExitsThree) {
  GateFiles files("within");
  EXPECT_EQ(RunCli({"zombieland", "diff", "--fail-on-delta", "--tolerance",
                    "m=5%", files.old_doc, files.moved_doc,
                    "--out=" + files.out}),
            0);
  EXPECT_EQ(RunCli({"zombieland", "diff", "--fail-on-delta", files.old_doc,
                    files.moved_doc, "--out=" + files.out}),
            3);
  // Without --fail-on-delta the same delta stays informational.
  EXPECT_EQ(RunCli({"zombieland", "diff", files.old_doc, files.moved_doc,
                    "--out=" + files.out}),
            0);
}

TEST(CliExitCodeTest, MetricRemovalFailsTheGate) {
  GateFiles files("removal");
  const std::string shrunk = TempFile("shrunk.json", Doc("\"m\": 100"));
  EXPECT_EQ(RunCli({"zombieland", "diff", "--fail-on-delta", files.old_doc,
                    shrunk, "--out=" + files.out}),
            3);
  // ...unless the vanished metric is explicitly ignored.
  EXPECT_EQ(RunCli({"zombieland", "diff", "--fail-on-delta", "--tolerance",
                    "gone=ignore", files.old_doc, shrunk,
                    "--out=" + files.out}),
            0);
}

TEST(CliExitCodeTest, ToleranceSpecErrorsAreUsageErrors) {
  GateFiles files("specerr");
  EXPECT_EQ(RunCli({"zombieland", "diff", "--tolerance", "m=bogus",
                    files.old_doc, files.same_doc}),
            2);
  EXPECT_EQ(RunCli({"zombieland", "diff", "--tolerance", "no-equals-sign",
                    files.old_doc, files.same_doc}),
            2);
  const std::string bad_file = TempFile("bad_tol.json", "{\"oops\": 1}");
  EXPECT_EQ(RunCli({"zombieland", "diff", "--tolerances=" + bad_file,
                    files.old_doc, files.same_doc}),
            2);
  // A well-formed file loads fine.
  const std::string good_file = TempFile(
      "good_tol.json",
      "{\"schema\": \"zombieland.diff.tolerances/v1\", \"default\": \"0\", "
      "\"metrics\": {\"m\": \"5%\"}}");
  EXPECT_EQ(RunCli({"zombieland", "diff", "--fail-on-delta",
                    "--tolerances=" + good_file, files.old_doc, files.moved_doc,
                    "--out=" + files.out}),
            0);
}

TEST(CliExitCodeTest, FileAndParseErrorsExitOne) {
  GateFiles files("fileerr");
  EXPECT_EQ(RunCli({"zombieland", "diff", "/no/such/file.json", files.same_doc}),
            1);
  const std::string garbage = TempFile("garbage.json", "not json at all");
  EXPECT_EQ(RunCli({"zombieland", "diff", garbage, files.same_doc}), 1);
}

TEST(CliExitCodeTest, DiffOnlyFlagsAreRejectedElsewhere) {
  EXPECT_EQ(RunCli({"zombieland", "run", "gate_ok", "--fail-on-delta"}), 2);
  EXPECT_EQ(RunCli({"zombieland", "list", "--tolerance", "m=5%"}), 2);
  EXPECT_EQ(RunCli({"zombieland", "run", "gate_ok", "--tolerances=x.json"}), 2);
}

// ---------------------------------------------------------------------------
// The `run` satellites: duplicate names, failure aggregation.
// ---------------------------------------------------------------------------

TEST(CliRunTest, DuplicateScenarioNamesAreAUsageError) {
  EXPECT_EQ(RunCli({"zombieland", "run", "gate_ok", "gate_ok", "--smoke"}), 2);
}

TEST(CliRunTest, AllFailuresReportedAndSuccessfulReportsStillEmitted) {
  // gate_fail first: the old first-failure-wins loop would have returned
  // before writing anything.  The run must exit non-zero AND the gate_ok
  // report must land in --out.
  const std::string out = "/tmp/zombieland_diff_gate_run_out.json";
  std::remove(out.c_str());
  EXPECT_EQ(RunCli({"zombieland", "run", "gate_fail", "gate_ok", "--smoke",
                    "--format=json", "--out=" + out}),
            1);
  const std::string doc = ReadAll(out);
  EXPECT_NE(doc.find("\"scenario\": \"gate_ok\""), std::string::npos) << doc;
  std::remove(out.c_str());
}

TEST(CliRunTest, AllScenariosFailingEmitsNothingAndExitsOne) {
  const std::string out = "/tmp/zombieland_diff_gate_run_empty.json";
  std::remove(out.c_str());
  EXPECT_EQ(RunCli({"zombieland", "run", "gate_fail", "--smoke",
                    "--format=json", "--out=" + out}),
            1);
  EXPECT_TRUE(ReadAll(out).empty());
}

TEST(CliRunTest, OutFileOpenErrorsAreDiagnosedAndExitOne) {
  EXPECT_EQ(RunCli({"zombieland", "run", "gate_ok", "--smoke",
                    "--out=/no/such/dir/x.json"}),
            1);
}

}  // namespace
}  // namespace zombie::scenario
