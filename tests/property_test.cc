// Property-based and parameterized sweeps over the core invariants:
//  * the pager never exceeds its frame budget and conserves pages;
//  * penalties are monotone in local memory and device speed;
//  * the buffer DB conserves buffers through random operation sequences;
//  * the Sz energy estimate respects physical orderings for any plausible
//    machine;
//  * migration estimates dominate correctly across the parameter space.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "src/acpi/energy_model.h"
#include "src/common/rng.h"
#include "src/hv/backend.h"
#include "src/hv/pager.h"
#include "src/hv/replacement.h"
#include "src/migration/migration.h"
#include "src/remotemem/buffer_db.h"
#include "src/workloads/app_models.h"
#include "src/workloads/runner.h"

namespace zombie {
namespace {

// ---------------------------------------------------------------------------
// Deterministic seeding.  Every Rng in this file derives from one base seed —
// a fixed constant, overridable with ZOMBIE_TEST_SEED=<n> — mixed with a
// per-site salt so distinct tests still explore distinct streams.  When a
// test fails, a ScopedSeedReporter prints the base seed so the failure can be
// reproduced exactly.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kDefaultTestSeed = 20180423;  // EuroSys'18 week

std::uint64_t BaseSeed() {
  static const std::uint64_t base = [] {
    if (const char* env = std::getenv("ZOMBIE_TEST_SEED")) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0') {
        return static_cast<std::uint64_t>(parsed);
      }
      std::fprintf(stderr, "property_test: ignoring malformed ZOMBIE_TEST_SEED=\"%s\"\n",
                   env);
    }
    return kDefaultTestSeed;
  }();
  return base;
}

std::uint64_t TestSeed(std::uint64_t salt) {
  // splitmix64-style mix keeps nearby salts decorrelated.
  std::uint64_t z = BaseSeed() + 0x9E3779B97F4A7C15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Prints the reproduction seed if the enclosing test fails after this object
// was constructed.
class ScopedSeedReporter {
 public:
  ScopedSeedReporter() : failed_on_entry_(::testing::Test::HasFailure()) {}
  ScopedSeedReporter(const ScopedSeedReporter&) = delete;
  ScopedSeedReporter& operator=(const ScopedSeedReporter&) = delete;
  ~ScopedSeedReporter() {
    if (!failed_on_entry_ && ::testing::Test::HasFailure()) {
      std::fprintf(stderr,
                   "[  SEED    ] base seed %llu — rerun with ZOMBIE_TEST_SEED=%llu "
                   "to reproduce\n",
                   static_cast<unsigned long long>(BaseSeed()),
                   static_cast<unsigned long long>(BaseSeed()));
    }
  }

 private:
  bool failed_on_entry_;
};

// ---------------------------------------------------------------------------
// Pager invariants under random access streams, across policies and sizes.
// ---------------------------------------------------------------------------

class PagerPropertyTest
    : public ::testing::TestWithParam<std::tuple<hv::PolicyKind, std::uint64_t, std::uint64_t>> {
};

TEST_P(PagerPropertyTest, FrameBudgetAndConservation) {
  const auto [policy, pages, frames] = GetParam();
  hv::PagingParams params;
  hv::DeviceBackend backend("dev", {2000, 2000});
  hv::HostPager pager(pages, frames, hv::MakePolicy(policy, params), &backend, params);
  ScopedSeedReporter seed_reporter;
  Rng rng(TestSeed(pages * 31 + frames));

  for (int i = 0; i < 20000; ++i) {
    const auto page = rng.NextBelow(pages);
    auto cost = pager.Access(page, rng.NextBool(0.4));
    ASSERT_TRUE(cost.ok());
    ASSERT_GT(cost.value(), 0);
  }
  // Invariant 1: resident pages never exceed the frame budget.
  EXPECT_LE(pager.table().CountPresent(), frames);
  // Invariant 2: present + free == budget.
  EXPECT_EQ(pager.table().CountPresent() + pager.free_frames(), frames);
  // Invariant 3: every touched page is either resident or swapped, never both.
  for (hv::PageIndex p = 0; p < pages; ++p) {
    const auto& entry = pager.table().at(p);
    EXPECT_FALSE(entry.present && entry.swapped) << "page " << p;
    if (entry.swapped) {
      EXPECT_TRUE(entry.touched);
    }
  }
  // Invariant 4: the policy tracks exactly the resident pages.
  EXPECT_EQ(pager.policy().tracked(), pager.table().CountPresent());
  // Invariant 5: faults >= major faults; evictions consistent with faults.
  EXPECT_GE(pager.stats().faults, pager.stats().major_faults);
  EXPECT_GE(pager.stats().writebacks, 0u);
  EXPECT_LE(pager.stats().writebacks, pager.stats().evictions);
}

std::string PagerParamName(
    const ::testing::TestParamInfo<std::tuple<hv::PolicyKind, std::uint64_t, std::uint64_t>>&
        info) {
  return std::string(hv::PolicyKindName(std::get<0>(info.param))) + "_p" +
         std::to_string(std::get<1>(info.param)) + "_f" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    PolicyBySize, PagerPropertyTest,
    ::testing::Combine(::testing::Values(hv::PolicyKind::kFifo, hv::PolicyKind::kClock,
                                         hv::PolicyKind::kMixed),
                       ::testing::Values(64, 257, 1024),   // guest pages
                       ::testing::Values(8, 63, 256)),     // frames
    PagerParamName);

// ---------------------------------------------------------------------------
// Penalty monotonicity sweeps (the Table-1 property, per app).
// ---------------------------------------------------------------------------

class PenaltyMonotonicityTest : public ::testing::TestWithParam<workloads::App> {};

TEST_P(PenaltyMonotonicityTest, PenaltyFallsAsLocalMemoryGrows) {
  workloads::AppProfile profile = workloads::ProfileFor(GetParam());
  profile.accesses = 300'000;  // trimmed for test runtime
  workloads::WorkloadRunner runner;
  hv::DeviceBackend remote("remote-ram", {2500, 2500});
  const auto baseline = runner.RunLocalOnly(profile);
  double previous = 1e18;
  for (double fraction : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const auto run = runner.RunRamExt(profile, fraction, &remote);
    const double penalty = workloads::PenaltyPercent(run, baseline);
    EXPECT_LE(penalty, previous * 1.10 + 1.0)
        << "penalty rose from " << previous << " to " << penalty << " at " << fraction;
    previous = penalty;
  }
}

std::string AppParamName(const ::testing::TestParamInfo<workloads::App>& info) {
  std::string name(workloads::AppName(info.param));
  for (char& c : name) {
    if (c == ' ' || c == '-') {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllApps, PenaltyMonotonicityTest,
                         ::testing::Values(workloads::App::kMicro,
                                           workloads::App::kElasticsearch,
                                           workloads::App::kDataCaching,
                                           workloads::App::kSparkSql),
                         AppParamName);

// Device-speed dominance: a strictly slower swap device never wins.
class DeviceOrderTest : public ::testing::TestWithParam<double> {};

TEST_P(DeviceOrderTest, SlowerDeviceNeverFaster) {
  const double fraction = GetParam();
  workloads::AppProfile profile = workloads::ElasticsearchProfile();
  profile.accesses = 200'000;
  workloads::WorkloadRunner runner;
  hv::DeviceBackend fast("fast", {3 * kMicrosecond, 3 * kMicrosecond});
  hv::DeviceBackend mid("mid", {90 * kMicrosecond, 70 * kMicrosecond});
  hv::DeviceBackend slow("slow", {6 * kMillisecond, 4 * kMillisecond});
  const auto t_fast = runner.RunExplicitSd(profile, fraction, &fast).sim_time;
  const auto t_mid = runner.RunExplicitSd(profile, fraction, &mid).sim_time;
  const auto t_slow = runner.RunExplicitSd(profile, fraction, &slow).sim_time;
  EXPECT_LE(t_fast, t_mid);
  EXPECT_LE(t_mid, t_slow);
}

INSTANTIATE_TEST_SUITE_P(LocalFractions, DeviceOrderTest,
                         ::testing::Values(0.2, 0.4, 0.5, 0.6, 0.8));

// ---------------------------------------------------------------------------
// Buffer DB conservation under random operation sequences.
// ---------------------------------------------------------------------------

TEST(BufferDbProperty, RandomOpsConserveBuffers) {
  ScopedSeedReporter seed_reporter;
  for (std::uint64_t salt = 1; salt <= 5; ++salt) {
    Rng rng(TestSeed(salt));
    remotemem::BufferDb db;
    std::map<remotemem::BufferId, bool> alive;  // id -> allocated
    remotemem::BufferId next_id = 1;

    for (int step = 0; step < 4000; ++step) {
      const auto op = rng.NextBelow(4);
      if (op == 0 || alive.empty()) {
        remotemem::BufferRecord rec;
        rec.id = next_id++;
        rec.size = 1 * kMiB;
        rec.host = static_cast<remotemem::ServerId>(1 + rng.NextBelow(8));
        ASSERT_TRUE(db.Insert(rec).ok());
        alive[rec.id] = false;
      } else {
        auto it = alive.begin();
        std::advance(it, static_cast<long>(rng.NextBelow(alive.size())));
        const auto id = it->first;
        if (op == 1) {
          const Status st = db.Assign(id, 99);
          EXPECT_EQ(st.ok(), !it->second);
          it->second = true;
        } else if (op == 2) {
          EXPECT_TRUE(db.Release(id).ok());
          it->second = false;
        } else {
          EXPECT_TRUE(db.Erase(id).ok());
          alive.erase(it);
        }
      }
      // Conservation: model and DB agree on counts at every step.
      ASSERT_EQ(db.size(), alive.size());
      std::size_t model_free = 0;
      for (const auto& [id, allocated] : alive) {
        model_free += allocated ? 0 : 1;
      }
      ASSERT_EQ(db.free_count(), model_free);
    }
  }
}

// Richer randomized op sequences: typed inserts with gapped ids, assigns,
// releases, erases and host retypes, checked against a shadow model for
// id-sorted iteration order, byte-level free/used accounting, per-host and
// per-user views, the Section 4.3 reclaim order, and Snapshot/Load round
// trips (the failover-replica path must reproduce the DB exactly).
TEST(BufferDbProperty, RandomOpsRoundTripAndStaySorted) {
  ScopedSeedReporter seed_reporter;
  for (std::uint64_t salt = 11; salt <= 14; ++salt) {
    Rng rng(TestSeed(salt));
    remotemem::BufferDb db;
    std::map<remotemem::BufferId, remotemem::BufferRecord> model;
    remotemem::BufferId next_id = 1;

    auto check = [&] {
      // Iteration order: strictly ascending ids, one record per model entry.
      ASSERT_EQ(db.records().size(), model.size());
      remotemem::BufferId previous = 0;
      Bytes free_bytes = 0;
      Bytes total_bytes = 0;
      for (const auto& rec : db.records()) {
        ASSERT_GT(rec.id, previous);
        previous = rec.id;
        auto it = model.find(rec.id);
        ASSERT_NE(it, model.end());
        EXPECT_EQ(rec.host, it->second.host);
        EXPECT_EQ(rec.user, it->second.user);
        EXPECT_EQ(rec.type, it->second.type);
        EXPECT_EQ(rec.size, it->second.size);
        total_bytes += rec.size;
        if (rec.user == remotemem::kNilServer) {
          free_bytes += rec.size;
        }
      }
      EXPECT_EQ(db.FreeBytes(), free_bytes);
      EXPECT_EQ(db.TotalBytes(), total_bytes);
      // Per-host / per-user views agree with the model.
      for (remotemem::ServerId host = 1; host <= 4; ++host) {
        std::size_t hosted = 0;
        std::size_t used = 0;
        for (const auto& [id, rec] : model) {
          hosted += rec.host == host ? 1 : 0;
          used += rec.user == host + 100 ? 1 : 0;
        }
        EXPECT_EQ(db.BuffersOfHost(host).size(), hosted);
        EXPECT_EQ(db.BuffersUsedBy(host + 100).size(), used);
        // Reclaim order: free buffers first, then used, ascending within
        // each group, covering every buffer of the host exactly once.
        const auto order = db.ReclaimOrderForHost(host);
        ASSERT_EQ(order.size(), hosted);
        bool seen_used = false;
        remotemem::BufferId last_free = 0;
        remotemem::BufferId last_used = 0;
        for (const auto& rec : order) {
          if (rec.user == remotemem::kNilServer) {
            EXPECT_FALSE(seen_used) << "free buffer after a used one";
            EXPECT_GT(rec.id, last_free);
            last_free = rec.id;
          } else {
            seen_used = true;
            EXPECT_GT(rec.id, last_used);
            last_used = rec.id;
          }
        }
      }
      // Snapshot -> Load round trip reproduces the DB byte for byte.
      remotemem::BufferDb replica;
      replica.Load(db.Snapshot());
      ASSERT_EQ(replica.records().size(), db.records().size());
      for (std::size_t i = 0; i < db.records().size(); ++i) {
        const auto& a = db.records()[i];
        const auto& b = replica.records()[i];
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.offset, b.offset);
        EXPECT_EQ(a.size, b.size);
        EXPECT_EQ(a.host, b.host);
        EXPECT_EQ(a.user, b.user);
        EXPECT_EQ(a.type, b.type);
      }
      EXPECT_EQ(replica.free_count(), db.free_count());
      EXPECT_EQ(replica.FreeBytes(), db.FreeBytes());
    };

    for (int step = 0; step < 2000; ++step) {
      const auto op = rng.NextBelow(5);
      if (op == 0 || model.empty()) {
        remotemem::BufferRecord rec;
        rec.id = next_id;
        next_id += 1 + rng.NextBelow(3);  // gapped ids (sharded id streams)
        rec.size = (1 + rng.NextBelow(4)) * kMiB;
        rec.host = static_cast<remotemem::ServerId>(1 + rng.NextBelow(4));
        rec.type = rng.NextBool(0.5) ? remotemem::BufferType::kZombie
                                     : remotemem::BufferType::kActive;
        ASSERT_TRUE(db.Insert(rec).ok());
        model[rec.id] = rec;
      } else if (op == 4) {
        const auto host = static_cast<remotemem::ServerId>(1 + rng.NextBelow(4));
        const auto type = rng.NextBool(0.5) ? remotemem::BufferType::kZombie
                                            : remotemem::BufferType::kActive;
        db.RetypeHost(host, type);
        for (auto& [id, rec] : model) {
          if (rec.host == host) {
            rec.type = type;
          }
        }
      } else {
        auto it = model.begin();
        std::advance(it, static_cast<long>(rng.NextBelow(model.size())));
        const auto id = it->first;
        if (op == 1) {
          const auto user = static_cast<remotemem::ServerId>(101 + rng.NextBelow(4));
          const Status st = db.Assign(id, user);
          EXPECT_EQ(st.ok(), it->second.user == remotemem::kNilServer);
          if (st.ok()) {
            it->second.user = user;
          }
        } else if (op == 2) {
          EXPECT_TRUE(db.Release(id).ok());
          it->second.user = remotemem::kNilServer;
        } else {
          EXPECT_TRUE(db.Erase(id).ok());
          model.erase(it);
        }
      }
      if (step % 250 == 0) {
        check();
      }
    }
    check();
  }
}

// ---------------------------------------------------------------------------
// Energy-model physical orderings for randomly perturbed machines.
// ---------------------------------------------------------------------------

TEST(EnergyModelProperty, OrderingsHoldForPerturbedMachines) {
  ScopedSeedReporter seed_reporter;
  Rng rng(TestSeed(2024));
  for (int i = 0; i < 200; ++i) {
    acpi::ComponentDraws d{};
    d.platform_standby = rng.NextDouble(0.1, 2.0);
    d.suspend_logic = rng.NextDouble(0.2, 2.0);
    d.ram_self_refresh = rng.NextDouble(0.5, 3.0);
    d.ram_active_idle = d.ram_self_refresh + rng.NextDouble(0.5, 2.0);
    d.idle_compute = rng.NextDouble(25.0, 45.0);
    d.ib_wol_s3 = rng.NextDouble(4.0, 8.0);
    d.ib_wol_s4 = rng.NextDouble(4.0, 8.0);
    d.ib_idle_extra = rng.NextDouble(4.0, 8.0);
    d.ib_active_extra = rng.NextDouble(1.0, 3.0);
    // Active compute fills the rest up to 100%.
    const double idle_total = d.platform_standby + d.suspend_logic + d.ram_self_refresh +
                              d.idle_compute + d.ib_idle_extra + d.ib_active_extra;
    d.active_compute = 100.0 - idle_total;
    acpi::MachineProfile m("fuzzed", 150.0, d);

    // Physical orderings that must hold for any machine:
    EXPECT_LT(m.ConfigPercent(acpi::MeasuredConfig::kS4WithoutIb),
              m.ConfigPercent(acpi::MeasuredConfig::kS3WithoutIb));
    EXPECT_LT(m.ConfigPercent(acpi::MeasuredConfig::kS3WithoutIb),
              m.ConfigPercent(acpi::MeasuredConfig::kS0WithoutIb));
    EXPECT_LT(m.ConfigPercent(acpi::MeasuredConfig::kS0WithoutIb),
              m.ConfigPercent(acpi::MeasuredConfig::kS0IbOff));
    EXPECT_LT(m.ConfigPercent(acpi::MeasuredConfig::kS0IbOff),
              m.ConfigPercent(acpi::MeasuredConfig::kS0IbOn));
    // Sz sits above S3-with-IB (it powers strictly more) and far below idle.
    EXPECT_GT(m.SzPercent(), m.ConfigPercent(acpi::MeasuredConfig::kS3WithIb));
    EXPECT_LT(m.SzPercent(), m.S0Percent(0.0));
    EXPECT_GT(m.SzModelPercent(), m.SzPercent());
    // The S0 curve is monotone and pinned at 100% under full load.
    EXPECT_NEAR(m.S0Percent(1.0), 100.0, 1e-6);
    EXPECT_LT(m.S0Percent(0.3), m.S0Percent(0.7));
  }
}

// ---------------------------------------------------------------------------
// Migration dominance across the parameter space.
// ---------------------------------------------------------------------------

TEST(MigrationProperty, ZombieNeverMovesMoreBytesThanPreCopy) {
  ScopedSeedReporter seed_reporter;
  Rng rng(TestSeed(7));
  for (int i = 0; i < 100; ++i) {
    hv::VmSpec vm;
    vm.reserved_memory = (1 + rng.NextBelow(15)) * kGiB;
    vm.working_set = static_cast<Bytes>(rng.NextDouble(0.1, 0.95) *
                                        static_cast<double>(vm.reserved_memory));
    const double local_fraction = rng.NextDouble(0.1, 0.9);
    const auto buffers = 1 + rng.NextBelow(64);
    const auto native = migration::PreCopyMigrate(vm);
    const auto zombie = migration::ZombieMigrate(vm, local_fraction, buffers);
    EXPECT_LE(zombie.bytes_moved, native.bytes_moved);
    EXPECT_LE(zombie.downtime, zombie.total_time);
    EXPECT_LE(native.downtime, native.total_time);
    // The hot part can never exceed either the WSS or the local share.
    EXPECT_LE(zombie.bytes_moved, vm.working_set);
    EXPECT_LE(zombie.bytes_moved,
              static_cast<Bytes>(local_fraction * static_cast<double>(vm.reserved_memory)) +
                  kPageSize);
  }
}

}  // namespace
}  // namespace zombie
