// Tests for the scenario subsystem (PR 3): ScenarioBuilder validation,
// registry lookup/listing, the Report JSON/CSV emitters (round-trip), the
// hardened Result<T> helpers, centralized smoke scaling, and golden
// byte-compares of the fig08/table1 table-mode smoke output against the
// pre-port bench binaries.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/report.h"
#include "src/common/result.h"
#include "src/scenario/registry.h"
#include "src/scenario/scenario.h"

#include "tests/golden/fig08_smoke_table.inc"
#include "tests/golden/table1_smoke_table.inc"

namespace zombie::scenario {
namespace {

using report::Format;
using report::Report;

Scenario::RunFn NopRunner() {
  return [](const RunContext& ctx) { return ctx.MakeReport(); };
}

// ---------------------------------------------------------------------------
// Builder validation.
// ---------------------------------------------------------------------------

TEST(ScenarioBuilderTest, MinimalSpecBuilds) {
  auto scenario = ScenarioBuilder("t").Title("a title").Runner(NopRunner()).Build();
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  EXPECT_EQ(scenario.value().name(), "t");
}

TEST(ScenarioBuilderTest, RejectsEmptyName) {
  auto scenario = ScenarioBuilder("").Title("t").Runner(NopRunner()).Build();
  ASSERT_FALSE(scenario.ok());
  EXPECT_EQ(scenario.status().code(), ErrorCode::kInvalidArgument);
}

TEST(ScenarioBuilderTest, RejectsWhitespaceName) {
  auto scenario = ScenarioBuilder("bad name").Title("t").Runner(NopRunner()).Build();
  EXPECT_FALSE(scenario.ok());
}

TEST(ScenarioBuilderTest, RejectsMissingTitle) {
  auto scenario = ScenarioBuilder("t").Runner(NopRunner()).Build();
  ASSERT_FALSE(scenario.ok());
  EXPECT_NE(scenario.status().message().find("title"), std::string::npos);
}

TEST(ScenarioBuilderTest, RejectsMissingRunner) {
  auto scenario = ScenarioBuilder("t").Title("t").Build();
  ASSERT_FALSE(scenario.ok());
  EXPECT_NE(scenario.status().message().find("run function"), std::string::npos);
}

TEST(ScenarioBuilderTest, RejectsBadLocalFraction) {
  for (double bad : {0.0, -0.25, 1.5}) {
    SCOPED_TRACE(bad);
    auto scenario = ScenarioBuilder("t")
                        .Title("t")
                        .Memory({.local_fractions = {0.5, bad}})
                        .Runner(NopRunner())
                        .Build();
    ASSERT_FALSE(scenario.ok());
    EXPECT_NE(scenario.status().message().find("local fraction"), std::string::npos);
  }
}

TEST(ScenarioBuilderTest, RejectsEmptyLocalFractions) {
  auto scenario = ScenarioBuilder("t")
                      .Title("t")
                      .Memory({.local_fractions = {}})
                      .Runner(NopRunner())
                      .Build();
  EXPECT_FALSE(scenario.ok());
}

TEST(ScenarioBuilderTest, RejectsZeroReservedMemory) {
  auto scenario = ScenarioBuilder("t")
                      .Title("t")
                      .Workload({.reserved_memory = Bytes{0}})
                      .Runner(NopRunner())
                      .Build();
  ASSERT_FALSE(scenario.ok());
  EXPECT_NE(scenario.status().message().find("reserved_memory"), std::string::npos);
}

TEST(ScenarioBuilderTest, RejectsWorkingSetLargerThanReserved) {
  auto scenario = ScenarioBuilder("t")
                      .Title("t")
                      .Workload({.reserved_memory = 8 * kMiB, .working_set = 16 * kMiB})
                      .Runner(NopRunner())
                      .Build();
  EXPECT_FALSE(scenario.ok());
}

TEST(ScenarioBuilderTest, RejectsUnknownPolicy) {
  auto scenario = ScenarioBuilder("t")
                      .Title("t")
                      .Memory({.policies = {static_cast<hv::PolicyKind>(99)}})
                      .Runner(NopRunner())
                      .Build();
  ASSERT_FALSE(scenario.ok());
  EXPECT_NE(scenario.status().message().find("policy"), std::string::npos);
}

TEST(ScenarioBuilderTest, RejectsZeroSmokeScale) {
  auto scenario =
      ScenarioBuilder("t").Title("t").SmokeScale(0).Runner(NopRunner()).Build();
  EXPECT_FALSE(scenario.ok());
}

TEST(ScenarioBuilderTest, RejectsZeroServerMemoryAndOversizedBuff) {
  auto zero_mem = ScenarioBuilder("t")
                      .Title("t")
                      .Topology({.server_memory = 0})
                      .Runner(NopRunner())
                      .Build();
  EXPECT_FALSE(zero_mem.ok());
  auto big_buff = ScenarioBuilder("t")
                      .Title("t")
                      .Topology({.server_memory = 1 * kGiB, .buff_size = 2 * kGiB})
                      .Runner(NopRunner())
                      .Build();
  EXPECT_FALSE(big_buff.ok());
}

TEST(ScenarioBuilderTest, RejectsEmptyEnergyMachines) {
  auto scenario = ScenarioBuilder("t")
                      .Title("t")
                      .Energy({.machines = {}, .trace = {}})
                      .Runner(NopRunner())
                      .Build();
  EXPECT_FALSE(scenario.ok());
}

// ---------------------------------------------------------------------------
// Smoke scaling (the centralized ZOMBIE_BENCH_SMOKE replacement).
// ---------------------------------------------------------------------------

TEST(RunContextTest, ScaledAccessesCapsOnlyInSmokeMode) {
  ScenarioSpec spec;
  spec.smoke_scale = 1000;
  RunOptions full;
  EXPECT_EQ(RunContext(spec, full).ScaledAccesses(5'000'000), 5'000'000u);
  RunOptions smoke;
  smoke.smoke = true;
  EXPECT_EQ(RunContext(spec, smoke).ScaledAccesses(5'000'000), 1000u);
  EXPECT_EQ(RunContext(spec, smoke).ScaledAccesses(500), 500u);
}

TEST(RunContextTest, ProfileAppliesOverridesAndSmoke) {
  ScenarioSpec spec;
  spec.workload.reserved_memory = 8 * kMiB;
  spec.workload.working_set = 4 * kMiB;
  RunOptions smoke;
  smoke.smoke = true;
  const auto profile =
      RunContext(spec, smoke).Profile(workloads::App::kElasticsearch);
  EXPECT_EQ(profile.reserved_memory, 8 * kMiB);
  EXPECT_EQ(profile.working_set, 4 * kMiB);
  EXPECT_LE(profile.accesses, spec.smoke_scale);
}

TEST(RunContextTest, ParamsParseAndFallBack) {
  ScenarioSpec spec;
  RunOptions options;
  options.params["servers"] = "42";
  options.params["ratio"] = "2.5";
  RunContext ctx(spec, options);
  EXPECT_TRUE(ctx.HasParam("servers"));
  EXPECT_FALSE(ctx.HasParam("tasks"));
  EXPECT_EQ(ctx.ParamU64("servers", 7), 42u);
  EXPECT_EQ(ctx.ParamU64("tasks", 7), 7u);
  EXPECT_EQ(ctx.ParamDouble("ratio", 1.0), 2.5);
  EXPECT_EQ(ctx.Param("missing", "x"), "x");
}

// ---------------------------------------------------------------------------
// Registry lookup / listing.
// ---------------------------------------------------------------------------

TEST(ScenarioRegistryTest, CatalogHasAtLeastFifteenScenarios) {
  EXPECT_GE(ScenarioRegistry::Instance().size(), 15u);
}

TEST(ScenarioRegistryTest, FindsEveryListedScenarioByName) {
  const auto all = ScenarioRegistry::Instance().List();
  ASSERT_FALSE(all.empty());
  for (const Scenario* scenario : all) {
    auto found = ScenarioRegistry::Instance().Find(scenario->name());
    ASSERT_TRUE(found.ok()) << scenario->name();
    EXPECT_EQ(found.value(), scenario);
  }
}

TEST(ScenarioRegistryTest, ListIsNameSorted) {
  const auto all = ScenarioRegistry::Instance().List();
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1]->name(), all[i]->name());
  }
}

TEST(ScenarioRegistryTest, UnknownNameIsNotFoundWithHint) {
  auto found = ScenarioRegistry::Instance().Find("fig0");
  ASSERT_FALSE(found.ok());
  EXPECT_EQ(found.status().code(), ErrorCode::kNotFound);
  // Prefix hint: fig01..fig10 all match.
  EXPECT_NE(found.status().message().find("fig08"), std::string::npos);
}

TEST(ScenarioRegistryTest, PaperFiguresAreRegistered) {
  for (const char* name : {"fig01", "fig02", "fig03", "fig04", "fig08", "fig09",
                           "fig10", "table1", "table2", "table2b", "table3",
                           "ablation_buff_size", "ablation_local_floor",
                           "ablation_mixed_depth", "ext_cooling", "ex_quickstart",
                           "ex_rack_consolidation", "ex_remote_swap",
                           "ex_vm_migration", "ex_datacenter_energy"}) {
    EXPECT_TRUE(ScenarioRegistry::Instance().Find(name).ok()) << name;
  }
}

TEST(ScenarioRegistryTest, DuplicateRegistrationConflicts) {
  ScenarioRegistry registry;
  auto scenario = ScenarioBuilder("dup").Title("t").Runner(NopRunner()).Build();
  ASSERT_TRUE(scenario.ok());
  EXPECT_TRUE(registry.Register(scenario.value()).ok());
  EXPECT_EQ(registry.Register(scenario.value()).code(), ErrorCode::kConflict);
}

// ---------------------------------------------------------------------------
// Report emitters.
// ---------------------------------------------------------------------------

Report SampleReport() {
  Report r("sample", "A \"quoted\" title\nwith newline");
  r.Text("== banner ==\n\n");
  auto& table = r.AddTable("t1", "first table:", {"name", "value"});
  table.Row({"plain", "1.00"});
  table.Row({"comma, cell", "2.50"});
  table.Row({"has \"quotes\"", "inf"});
  r.Text("\n");
  auto& second = r.AddTable("t2", "", {"x"});
  second.Row({"y"});
  r.Metric("best_percent", 12.5);
  r.Metric("not_finite", 1.0 / 0.0);
  r.Text("\ntrailing note\n");
  return r;
}

TEST(ReportTest, JsonIsSchemaValid) {
  const Report r = SampleReport();
  const std::string json = r.RenderJson();
  EXPECT_TRUE(report::ValidateJson(json).ok())
      << report::ValidateJson(json).ToString() << "\n" << json;
  EXPECT_TRUE(report::ValidateReportJson(json).ok());
  // Escaped title and non-finite metric handling.
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"not_finite\": null"), std::string::npos);
  EXPECT_NE(json.find("\"best_percent\": 12.5"), std::string::npos);
}

TEST(ReportTest, JsonRoundTripsCellsAndColumns) {
  const std::string json = SampleReport().RenderJson();
  // Every cell value must survive into the document (with escaping).
  EXPECT_NE(json.find("\"comma, cell\""), std::string::npos);
  EXPECT_NE(json.find("has \\\"quotes\\\""), std::string::npos);
  EXPECT_NE(json.find("\"columns\": [\"name\", \"value\"]"), std::string::npos);
}

TEST(ReportTest, ValidatorRejectsMalformedJson) {
  EXPECT_FALSE(report::ValidateJson("{\"a\": }").ok());
  EXPECT_FALSE(report::ValidateJson("{\"a\": 1,}").ok());
  EXPECT_FALSE(report::ValidateJson("{\"a\": \"unterminated}").ok());
  EXPECT_FALSE(report::ValidateJson("[1, 2").ok());
  EXPECT_FALSE(report::ValidateJson("{} trailing").ok());
  EXPECT_TRUE(report::ValidateJson("[1, 2.5, -3e4, true, null, \"s\"]").ok());
  EXPECT_TRUE(report::ValidateJson("{\"nested\": {\"a\": [{}]}}").ok());
  // Schema check needs the report keys.
  EXPECT_FALSE(report::ValidateReportJson("{\"schema\": 1}").ok());
}

// A tiny CSV reader for the round-trip check: splits `text` into rows of
// cells, honouring RFC-4180 quoting, skipping comment/blank lines.
std::vector<std::vector<std::string>> ParseCsv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] == '#') {  // comment line
      while (i < text.size() && text[i] != '\n') {
        ++i;
      }
      ++i;
      continue;
    }
    if (text[i] == '\n') {
      ++i;
      continue;
    }
    std::vector<std::string> row;
    std::string cell;
    while (i < text.size() && text[i] != '\n') {
      if (text[i] == '"') {
        ++i;
        while (i < text.size()) {
          if (text[i] == '"' && i + 1 < text.size() && text[i + 1] == '"') {
            cell += '"';
            i += 2;
          } else if (text[i] == '"') {
            ++i;
            break;
          } else {
            cell += text[i++];
          }
        }
      } else if (text[i] == ',') {
        row.push_back(cell);
        cell.clear();
        ++i;
      } else {
        cell += text[i++];
      }
    }
    row.push_back(cell);
    rows.push_back(row);
    ++i;
  }
  return rows;
}

TEST(ReportTest, CsvRoundTrip) {
  const Report r = SampleReport();
  const auto rows = ParseCsv(r.RenderCsv());
  // t1: header + 3 rows; t2: header + 1 row.
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"name", "value"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"plain", "1.00"}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"comma, cell", "2.50"}));
  EXPECT_EQ(rows[3], (std::vector<std::string>{"has \"quotes\"", "inf"}));
  EXPECT_EQ(rows[4], (std::vector<std::string>{"x"}));
  EXPECT_EQ(rows[5], (std::vector<std::string>{"y"}));
}

TEST(ReportTest, NumAndPenaltyFormatting) {
  EXPECT_EQ(Report::Num(12.345, 2), "12.35");
  EXPECT_EQ(Report::Num(7, 0), "7");
  EXPECT_EQ(Report::Penalty(8.0), "8.00%");
  EXPECT_EQ(Report::Penalty(42.25), "42.2%");
  EXPECT_EQ(Report::Penalty(9000.0), "9k%");
  EXPECT_EQ(Report::Penalty(1.0 / 0.0), "inf");
  EXPECT_EQ(Report::Int(123), "123");
}

// ---------------------------------------------------------------------------
// Result<T> hardening helpers.
// ---------------------------------------------------------------------------

Result<int> ParsePositive(int v) {
  if (v <= 0) {
    return Result<int>(ErrorCode::kInvalidArgument, "not positive");
  }
  return v;
}

Status UseAssignOrReturn(int v, int* out) {
  ZOMBIE_ASSIGN_OR_RETURN(const int parsed, ParsePositive(v));
  ZOMBIE_RETURN_IF_ERROR(Status::Ok());
  *out = parsed * 2;
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnPropagatesValueAndError) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  const Status failed = UseAssignOrReturn(-1, &out);
  EXPECT_EQ(failed.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(out, 42);  // untouched on the error path
}

TEST(ResultTest, ValueOrOnBothReferenceKinds) {
  const Result<std::string> good(std::string("yes"));
  const std::string fallback = "no";
  EXPECT_EQ(good.value_or(fallback), "yes");
  Result<std::string> bad(ErrorCode::kNotFound, "missing");
  EXPECT_EQ(bad.value_or(fallback), "no");
  EXPECT_EQ(Result<std::string>(std::string("moved")).value_or("no"), "moved");
  EXPECT_EQ(Result<std::string>(ErrorCode::kTimeout, "t").value_or("fb"), "fb");
}

// ---------------------------------------------------------------------------
// Golden byte-compares: fig08/table1 table output against the pre-port
// binaries' smoke-mode stdout.
// ---------------------------------------------------------------------------

std::string RunTableSmoke(const char* name) {
  auto found = ScenarioRegistry::Instance().Find(name);
  if (!found.ok()) {
    ADD_FAILURE() << found.status().ToString();
    return {};
  }
  RunOptions options;
  options.smoke = true;
  auto report = found.value()->Run(options);
  if (!report.ok()) {
    ADD_FAILURE() << report.status().ToString();
    return {};
  }
  return report.value().RenderTableText();
}

TEST(ScenarioGoldenTest, Fig08TableSmokeMatchesPrePortBinary) {
  // The .inc capture drops the trailing newline of the original stdout.
  EXPECT_EQ(RunTableSmoke("fig08"), std::string(kFig08SmokeGolden) + "\n");
}

TEST(ScenarioGoldenTest, Table1TableSmokeMatchesPrePortBinary) {
  EXPECT_EQ(RunTableSmoke("table1"), std::string(kTable1SmokeGolden) + "\n");
}

// Every registered scenario must produce a schema-valid JSON document in
// smoke mode (the ctest scenario_cli gate re-checks this through the CLI).
TEST(ScenarioGoldenTest, EveryScenarioEmitsSchemaValidJsonInSmokeMode) {
  RunOptions options;
  options.smoke = true;
  for (const Scenario* scenario : ScenarioRegistry::Instance().List()) {
    SCOPED_TRACE(scenario->name());
    auto report = scenario->Run(options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const std::string json = report.value().RenderJson();
    EXPECT_TRUE(report::ValidateReportJson(json).ok())
        << report::ValidateReportJson(json).ToString();
    EXPECT_TRUE(report.value().smoke());
  }
}

}  // namespace
}  // namespace zombie::scenario
