// Tests for the scenario subsystem (PR 3): ScenarioBuilder validation,
// registry lookup/listing, the Report JSON/CSV emitters (round-trip), the
// hardened Result<T> helpers, centralized smoke scaling, and golden
// byte-compares of the fig08/table1 table-mode smoke output against the
// pre-port bench binaries.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/report.h"
#include "src/common/result.h"
#include "src/scenario/registry.h"
#include "src/scenario/scenario.h"

#include "tests/golden/ablation_mixed_depth_smoke_table.inc"
#include "tests/golden/fig08_smoke_table.inc"
#include "tests/golden/table1_smoke_table.inc"

namespace zombie::scenario {
namespace {

using report::Format;
using report::Report;

Scenario::RunFn NopRunner() {
  return [](const RunContext& ctx) { return ctx.MakeReport(); };
}

// ---------------------------------------------------------------------------
// Builder validation.
// ---------------------------------------------------------------------------

TEST(ScenarioBuilderTest, MinimalSpecBuilds) {
  auto scenario = ScenarioBuilder("t").Title("a title").Runner(NopRunner()).Build();
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  EXPECT_EQ(scenario.value().name(), "t");
}

TEST(ScenarioBuilderTest, RejectsEmptyName) {
  auto scenario = ScenarioBuilder("").Title("t").Runner(NopRunner()).Build();
  ASSERT_FALSE(scenario.ok());
  EXPECT_EQ(scenario.status().code(), ErrorCode::kInvalidArgument);
}

TEST(ScenarioBuilderTest, RejectsWhitespaceName) {
  auto scenario = ScenarioBuilder("bad name").Title("t").Runner(NopRunner()).Build();
  EXPECT_FALSE(scenario.ok());
}

TEST(ScenarioBuilderTest, RejectsMissingTitle) {
  auto scenario = ScenarioBuilder("t").Runner(NopRunner()).Build();
  ASSERT_FALSE(scenario.ok());
  EXPECT_NE(scenario.status().message().find("title"), std::string::npos);
}

TEST(ScenarioBuilderTest, RejectsMissingRunner) {
  auto scenario = ScenarioBuilder("t").Title("t").Build();
  ASSERT_FALSE(scenario.ok());
  EXPECT_NE(scenario.status().message().find("run function"), std::string::npos);
}

TEST(ScenarioBuilderTest, RejectsBadLocalFraction) {
  for (double bad : {0.0, -0.25, 1.5}) {
    SCOPED_TRACE(bad);
    auto scenario = ScenarioBuilder("t")
                        .Title("t")
                        .Memory({.local_fractions = {0.5, bad}})
                        .Runner(NopRunner())
                        .Build();
    ASSERT_FALSE(scenario.ok());
    EXPECT_NE(scenario.status().message().find("local fraction"), std::string::npos);
  }
}

TEST(ScenarioBuilderTest, RejectsEmptyLocalFractions) {
  auto scenario = ScenarioBuilder("t")
                      .Title("t")
                      .Memory({.local_fractions = {}})
                      .Runner(NopRunner())
                      .Build();
  EXPECT_FALSE(scenario.ok());
}

TEST(ScenarioBuilderTest, RejectsZeroReservedMemory) {
  auto scenario = ScenarioBuilder("t")
                      .Title("t")
                      .Workload({.reserved_memory = Bytes{0}})
                      .Runner(NopRunner())
                      .Build();
  ASSERT_FALSE(scenario.ok());
  EXPECT_NE(scenario.status().message().find("reserved_memory"), std::string::npos);
}

TEST(ScenarioBuilderTest, RejectsWorkingSetLargerThanReserved) {
  auto scenario = ScenarioBuilder("t")
                      .Title("t")
                      .Workload({.reserved_memory = 8 * kMiB, .working_set = 16 * kMiB})
                      .Runner(NopRunner())
                      .Build();
  EXPECT_FALSE(scenario.ok());
}

TEST(ScenarioBuilderTest, RejectsUnknownPolicy) {
  auto scenario = ScenarioBuilder("t")
                      .Title("t")
                      .Memory({.policies = {static_cast<hv::PolicyKind>(99)}})
                      .Runner(NopRunner())
                      .Build();
  ASSERT_FALSE(scenario.ok());
  EXPECT_NE(scenario.status().message().find("policy"), std::string::npos);
}

TEST(ScenarioBuilderTest, RejectsZeroSmokeScale) {
  auto scenario =
      ScenarioBuilder("t").Title("t").SmokeScale(0).Runner(NopRunner()).Build();
  EXPECT_FALSE(scenario.ok());
}

TEST(ScenarioBuilderTest, RejectsZeroServerMemoryAndOversizedBuff) {
  auto zero_mem = ScenarioBuilder("t")
                      .Title("t")
                      .Topology({.server_memory = 0})
                      .Runner(NopRunner())
                      .Build();
  EXPECT_FALSE(zero_mem.ok());
  auto big_buff = ScenarioBuilder("t")
                      .Title("t")
                      .Topology({.server_memory = 1 * kGiB, .buff_size = 2 * kGiB})
                      .Runner(NopRunner())
                      .Build();
  EXPECT_FALSE(big_buff.ok());
}

TEST(ScenarioBuilderTest, RejectsEmptyEnergyMachines) {
  auto scenario = ScenarioBuilder("t")
                      .Title("t")
                      .Energy({.machines = {}, .trace = {}})
                      .Runner(NopRunner())
                      .Build();
  EXPECT_FALSE(scenario.ok());
}

// ---------------------------------------------------------------------------
// Sweep combinator: builder validation.
// ---------------------------------------------------------------------------

ScenarioBuilder SweptBuilder() {
  return std::move(ScenarioBuilder("swept")
                       .Title("t")
                       .Param("policy", ParamType::kString, "", "")
                       .Param("fraction", ParamType::kDouble, "", "")
                       .Runner(NopRunner()));
}

TEST(SweepSpecTest, CrossSweepBuilds) {
  auto scenario = SweptBuilder()
                      .Sweep({.axes = {{"policy", {"FIFO", "Mixed"}},
                                       {"fraction", {"0.2", "0.5"}}}})
                      .Build();
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
}

TEST(SweepSpecTest, RejectsUndeclaredAxisParameter) {
  auto scenario = SweptBuilder().Sweep({.axes = {{"nope", {"1"}}}}).Build();
  ASSERT_FALSE(scenario.ok());
  EXPECT_NE(scenario.status().message().find("not a declared parameter"),
            std::string::npos);
}

TEST(SweepSpecTest, RejectsEmptyAxis) {
  auto scenario = SweptBuilder().Sweep({.axes = {{"policy", {}}}}).Build();
  ASSERT_FALSE(scenario.ok());
  EXPECT_NE(scenario.status().message().find("no values"), std::string::npos);
}

TEST(SweepSpecTest, RejectsDuplicateAxis) {
  auto scenario = SweptBuilder()
                      .Sweep({.axes = {{"policy", {"FIFO"}}, {"policy", {"Mixed"}}}})
                      .Build();
  ASSERT_FALSE(scenario.ok());
  EXPECT_NE(scenario.status().message().find("duplicate sweep axis"),
            std::string::npos);
}

TEST(SweepSpecTest, RejectsMistypedAxisValue) {
  auto scenario =
      SweptBuilder().Sweep({.axes = {{"fraction", {"0.2", "lots"}}}}).Build();
  ASSERT_FALSE(scenario.ok());
  EXPECT_NE(scenario.status().message().find("not a finite number"),
            std::string::npos);
}

TEST(SweepSpecTest, RejectsUnequalZipLengths) {
  auto scenario = SweptBuilder()
                      .Sweep({.mode = SweepMode::kZip,
                              .axes = {{"policy", {"FIFO", "Mixed"}},
                                       {"fraction", {"0.2"}}}})
                      .Build();
  ASSERT_FALSE(scenario.ok());
  EXPECT_NE(scenario.status().message().find("equal lengths"), std::string::npos);
}

TEST(SweepSpecTest, RejectsValueOutsideChoices) {
  auto scenario = ScenarioBuilder("t")
                      .Title("t")
                      .Param({.name = "policy", .choices = {"FIFO", "Clock"}})
                      .Sweep({.axes = {{"policy", {"FIFO", "Mixed"}}}})
                      .Runner(NopRunner())
                      .Build();
  ASSERT_FALSE(scenario.ok());
  EXPECT_NE(scenario.status().message().find("not one of"), std::string::npos);
}

TEST(SweepSpecTest, RejectsDuplicateAndMistypedParams) {
  auto dup = ScenarioBuilder("t")
                 .Title("t")
                 .Param("x", ParamType::kU64, "", "")
                 .Param("x", ParamType::kU64, "", "")
                 .Runner(NopRunner())
                 .Build();
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().message().find("duplicate parameter"), std::string::npos);
  auto bad_default = ScenarioBuilder("t")
                         .Title("t")
                         .Param("x", ParamType::kU64, "-3", "")
                         .Runner(NopRunner())
                         .Build();
  ASSERT_FALSE(bad_default.ok());
  EXPECT_NE(bad_default.status().message().find("unsigned 64-bit integer"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Sweep combinator: expansion.
// ---------------------------------------------------------------------------

ScenarioSpec SweptSpec(SweepMode mode) {
  ScenarioSpec spec;
  spec.name = "swept";
  spec.title = "t";
  spec.params = {{"policy", ParamType::kString, "", "", {}},
                 {"fraction", ParamType::kDouble, "", "", {}}};
  spec.sweep = {mode,
                {{"policy", {"FIFO", "Clock", "Mixed"}},
                 {"fraction", {"0.2", "0.5", "0.8"}}}};
  return spec;
}

TEST(SweepExpansionTest, CrossProductCountAndOrder) {
  const ScenarioSpec spec = SweptSpec(SweepMode::kCross);
  RunOptions options;
  RunContext ctx(spec, options);
  const auto points = ctx.SweepPoints();
  ASSERT_EQ(points.size(), 9u);  // 3 policies x 3 fractions
  // First axis outermost: policy changes every 3 points.
  EXPECT_EQ(points[0].Value("policy"), "FIFO");
  EXPECT_EQ(points[0].Value("fraction"), "0.2");
  EXPECT_EQ(points[2].Value("fraction"), "0.8");
  EXPECT_EQ(points[3].Value("policy"), "Clock");
  EXPECT_EQ(points[8].Value("policy"), "Mixed");
  EXPECT_EQ(points[8].AxisIndex("policy"), 2u);
  EXPECT_EQ(points[8].AxisIndex("fraction"), 2u);
  EXPECT_EQ(points[4].index(), 4u);
  EXPECT_EQ(points[4].Double("fraction"), 0.5);
}

TEST(SweepExpansionTest, ZipCountAndLockstep) {
  const ScenarioSpec spec = SweptSpec(SweepMode::kZip);
  RunOptions options;
  RunContext ctx(spec, options);
  const auto points = ctx.SweepPoints();
  ASSERT_EQ(points.size(), 3u);  // zipped, not 9
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].AxisIndex("policy"), i);
    EXPECT_EQ(points[i].AxisIndex("fraction"), i);
  }
  EXPECT_EQ(points[1].Value("policy"), "Clock");
  EXPECT_EQ(points[1].Value("fraction"), "0.5");
}

TEST(SweepExpansionTest, NoSweepMeansNoPoints) {
  ScenarioSpec spec;
  RunOptions options;
  EXPECT_TRUE(RunContext(spec, options).SweepPoints().empty());
}

TEST(SweepExpansionTest, SetOverrideReplacesAxisValues) {
  const ScenarioSpec spec = SweptSpec(SweepMode::kCross);
  RunOptions options;
  options.params["fraction"] = "0.1,0.9";
  RunContext ctx(spec, options);
  EXPECT_EQ(ctx.Axis("fraction"), (std::vector<std::string>{"0.1", "0.9"}));
  const auto doubles = ctx.AxisDoubles("fraction");
  ASSERT_EQ(doubles.size(), 2u);
  EXPECT_EQ(doubles[1], 0.9);
  EXPECT_EQ(ctx.SweepPoints().size(), 6u);  // 3 policies x 2 fractions
}

TEST(SweepExpansionTest, U64AxisParses) {
  ScenarioSpec spec;
  spec.name = "t";
  spec.title = "t";
  spec.params = {{"depth", ParamType::kU64, "", "", {}}};
  spec.sweep = {SweepMode::kCross, {{"depth", {"1", "16", "256"}}}};
  RunOptions options;
  RunContext ctx(spec, options);
  EXPECT_EQ(ctx.AxisU64s("depth"), (std::vector<std::uint64_t>{1, 16, 256}));
  EXPECT_EQ(ctx.SweepPoints()[2].U64("depth"), 256u);
}

// ---------------------------------------------------------------------------
// CLI --set validation against the declared parameter table.
// ---------------------------------------------------------------------------

TEST(RunParamsTest, RejectsUndeclaredKeyNamingDeclaredOnes) {
  const ScenarioSpec spec = SweptSpec(SweepMode::kCross);
  RunOptions options;
  options.params["polcy"] = "FIFO";
  const Status status = ValidateRunParams(spec, options);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("no parameter 'polcy'"), std::string::npos);
  EXPECT_NE(status.message().find("policy"), std::string::npos);
}

TEST(RunParamsTest, RejectsNonFiniteOverflowAndOutOfRangeValues) {
  ParamSpec fraction{"f", ParamType::kDouble, "", "", {},
                     ParamRange{0.0, 1.0, /*min_exclusive=*/true}};
  EXPECT_FALSE(CheckParamValue(fraction, "nan").ok());
  EXPECT_FALSE(CheckParamValue(fraction, "inf").ok());
  EXPECT_FALSE(CheckParamValue(fraction, "0").ok());     // exclusive min
  EXPECT_FALSE(CheckParamValue(fraction, "1.5").ok());
  EXPECT_TRUE(CheckParamValue(fraction, "1").ok());      // inclusive max
  EXPECT_TRUE(CheckParamValue(fraction, "0.25").ok());
  ParamSpec depth{"d", ParamType::kU64, "", "", {}, ParamRange{.min = 1}};
  EXPECT_FALSE(CheckParamValue(depth, "0").ok());
  EXPECT_FALSE(CheckParamValue(depth, "18446744073709551617").ok());  // > 2^64-1
  EXPECT_TRUE(CheckParamValue(depth, "18446744073709551615").ok());
}

TEST(RunParamsTest, RejectsMistypedValueAndAcceptsAxisList) {
  const ScenarioSpec spec = SweptSpec(SweepMode::kCross);
  RunOptions bad;
  bad.params["fraction"] = "0.2,zero";
  EXPECT_FALSE(ValidateRunParams(spec, bad).ok());
  RunOptions good;
  good.params["fraction"] = "0.25,0.75";
  EXPECT_TRUE(ValidateRunParams(spec, good).ok());
}

TEST(RunParamsTest, RejectsZipBreakingOverride) {
  const ScenarioSpec spec = SweptSpec(SweepMode::kZip);
  RunOptions options;
  options.params["fraction"] = "0.25,0.75";  // policy axis still has 3 values
  const Status status = ValidateRunParams(spec, options);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("equal lengths"), std::string::npos);
}

TEST(RunParamsTest, RunFailsCleanlyOnUnknownSetKey) {
  auto found = ScenarioRegistry::Instance().Find("fig08");
  ASSERT_TRUE(found.ok());
  RunOptions options;
  options.smoke = true;
  options.params["bogus"] = "1";
  auto report = found.value()->Run(options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kInvalidArgument);
}

TEST(RunParamsTest, DeclaredDefaultBacksParamGetters) {
  ScenarioSpec spec;
  spec.params = {{"ratio", ParamType::kDouble, "2.5", "", {}},
                 {"count", ParamType::kU64, "7", "", {}}};
  RunOptions options;
  RunContext ctx(spec, options);
  EXPECT_FALSE(ctx.HasParam("ratio"));  // HasParam stays CLI-only
  EXPECT_EQ(ctx.ParamDouble("ratio", 1.0), 2.5);
  EXPECT_EQ(ctx.ParamU64("count", 1), 7u);
  options.params["ratio"] = "4.0";
  EXPECT_EQ(RunContext(spec, options).ParamDouble("ratio", 1.0), 4.0);
}

// ---------------------------------------------------------------------------
// The sweep-aware report section.
// ---------------------------------------------------------------------------

TEST(SweepTableTest, FillsPivotCellsInAnyOrder) {
  Report r("s", "t");
  auto grid = r.AddSweepTable("g", "", "row", {"a", "b"}, {"x", "y"});
  grid.Set(1, 1, "b-y");
  grid.Set(0, 0, "a-x");
  grid.Set(0, 1, "a-y");
  grid.Set(1, 0, "b-x");
  ASSERT_EQ(r.tables().size(), 1u);
  const auto& table = r.tables()[0];
  EXPECT_EQ(table.columns(), (std::vector<std::string>{"row", "x", "y"}));
  EXPECT_EQ(table.rows()[0], (std::vector<std::string>{"a", "a-x", "a-y"}));
  EXPECT_EQ(table.rows()[1], (std::vector<std::string>{"b", "b-x", "b-y"}));
}

TEST(SweepTableTest, HandleSurvivesLaterTableAdditions) {
  Report r("s", "t");
  auto first = r.AddSweepTable("g1", "", "row", {"a"}, {"x"});
  // Force tables_ growth: the handle must keep addressing its own table.
  for (int i = 0; i < 16; ++i) {
    r.AddTable("t" + std::to_string(i), "", {"c"});
  }
  first.Set(0, 0, "value");
  EXPECT_EQ(r.tables()[0].rows()[0],
            (std::vector<std::string>{"a", "value"}));
}

// ---------------------------------------------------------------------------
// Smoke scaling (the centralized ZOMBIE_BENCH_SMOKE replacement).
// ---------------------------------------------------------------------------

TEST(RunContextTest, ScaledAccessesCapsOnlyInSmokeMode) {
  ScenarioSpec spec;
  spec.smoke_scale = 1000;
  RunOptions full;
  EXPECT_EQ(RunContext(spec, full).ScaledAccesses(5'000'000), 5'000'000u);
  RunOptions smoke;
  smoke.smoke = true;
  EXPECT_EQ(RunContext(spec, smoke).ScaledAccesses(5'000'000), 1000u);
  EXPECT_EQ(RunContext(spec, smoke).ScaledAccesses(500), 500u);
}

TEST(RunContextTest, ProfileAppliesOverridesAndSmoke) {
  ScenarioSpec spec;
  spec.workload.reserved_memory = 8 * kMiB;
  spec.workload.working_set = 4 * kMiB;
  RunOptions smoke;
  smoke.smoke = true;
  const auto profile =
      RunContext(spec, smoke).Profile(workloads::App::kElasticsearch);
  EXPECT_EQ(profile.reserved_memory, 8 * kMiB);
  EXPECT_EQ(profile.working_set, 4 * kMiB);
  EXPECT_LE(profile.accesses, spec.smoke_scale);
}

TEST(RunContextTest, ParamsParseAndFallBack) {
  ScenarioSpec spec;
  RunOptions options;
  options.params["servers"] = "42";
  options.params["ratio"] = "2.5";
  RunContext ctx(spec, options);
  EXPECT_TRUE(ctx.HasParam("servers"));
  EXPECT_FALSE(ctx.HasParam("tasks"));
  EXPECT_EQ(ctx.ParamU64("servers", 7), 42u);
  EXPECT_EQ(ctx.ParamU64("tasks", 7), 7u);
  EXPECT_EQ(ctx.ParamDouble("ratio", 1.0), 2.5);
  EXPECT_EQ(ctx.Param("missing", "x"), "x");
}

// ---------------------------------------------------------------------------
// Registry lookup / listing.
// ---------------------------------------------------------------------------

TEST(ScenarioRegistryTest, CatalogHasAtLeastFifteenScenarios) {
  EXPECT_GE(ScenarioRegistry::Instance().size(), 15u);
}

TEST(ScenarioRegistryTest, FindsEveryListedScenarioByName) {
  const auto all = ScenarioRegistry::Instance().List();
  ASSERT_FALSE(all.empty());
  for (const Scenario* scenario : all) {
    auto found = ScenarioRegistry::Instance().Find(scenario->name());
    ASSERT_TRUE(found.ok()) << scenario->name();
    EXPECT_EQ(found.value(), scenario);
  }
}

TEST(ScenarioRegistryTest, ListIsNameSorted) {
  const auto all = ScenarioRegistry::Instance().List();
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1]->name(), all[i]->name());
  }
}

TEST(ScenarioRegistryTest, UnknownNameIsNotFoundWithHint) {
  auto found = ScenarioRegistry::Instance().Find("fig0");
  ASSERT_FALSE(found.ok());
  EXPECT_EQ(found.status().code(), ErrorCode::kNotFound);
  // Prefix hint: fig01..fig10 all match.
  EXPECT_NE(found.status().message().find("fig08"), std::string::npos);
}

TEST(ScenarioRegistryTest, SuggestsClosestNameByEditDistance) {
  // A transposition typo has edit distance 2 but no prefix relation.
  auto found = ScenarioRegistry::Instance().Find("tabel2");
  ASSERT_FALSE(found.ok());
  EXPECT_NE(found.status().message().find("did you mean"), std::string::npos);
  EXPECT_NE(found.status().message().find("table2"), std::string::npos);
  // The closest match leads the list.
  auto fig8 = ScenarioRegistry::Instance().Find("fig8");
  ASSERT_FALSE(fig8.ok());
  EXPECT_NE(fig8.status().message().find("did you mean: fig08"), std::string::npos);
  // Nothing close: no suggestion block at all.
  auto garbage = ScenarioRegistry::Instance().Find("qqqqqqqqqqqq");
  ASSERT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.status().message().find("did you mean"), std::string::npos);
}

TEST(ScenarioRegistryTest, PaperFiguresAreRegistered) {
  for (const char* name : {"fig01", "fig02", "fig03", "fig04", "fig08", "fig09",
                           "fig10", "table1", "table2", "table2b", "table3",
                           "ablation_buff_size", "ablation_local_floor",
                           "ablation_mixed_depth", "ext_cooling", "ex_quickstart",
                           "ex_rack_consolidation", "ex_remote_swap",
                           "ex_vm_migration", "ex_datacenter_energy"}) {
    EXPECT_TRUE(ScenarioRegistry::Instance().Find(name).ok()) << name;
  }
}

TEST(ScenarioRegistryTest, DuplicateRegistrationConflicts) {
  ScenarioRegistry registry;
  auto scenario = ScenarioBuilder("dup").Title("t").Runner(NopRunner()).Build();
  ASSERT_TRUE(scenario.ok());
  EXPECT_TRUE(registry.Register(scenario.value()).ok());
  EXPECT_EQ(registry.Register(scenario.value()).code(), ErrorCode::kConflict);
}

// ---------------------------------------------------------------------------
// Report emitters.
// ---------------------------------------------------------------------------

Report SampleReport() {
  Report r("sample", "A \"quoted\" title\nwith newline");
  r.Text("== banner ==\n\n");
  auto& table = r.AddTable("t1", "first table:", {"name", "value"});
  table.Row({"plain", "1.00"});
  table.Row({"comma, cell", "2.50"});
  table.Row({"has \"quotes\"", "inf"});
  r.Text("\n");
  auto& second = r.AddTable("t2", "", {"x"});
  second.Row({"y"});
  r.Metric("best_percent", 12.5);
  r.Metric("not_finite", 1.0 / 0.0);
  r.Text("\ntrailing note\n");
  return r;
}

TEST(ReportTest, JsonIsSchemaValid) {
  const Report r = SampleReport();
  const std::string json = r.RenderJson();
  EXPECT_TRUE(report::ValidateJson(json).ok())
      << report::ValidateJson(json).ToString() << "\n" << json;
  EXPECT_TRUE(report::ValidateReportJson(json).ok());
  // Escaped title and non-finite metric handling.
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"not_finite\": null"), std::string::npos);
  EXPECT_NE(json.find("\"best_percent\": 12.5"), std::string::npos);
}

TEST(ReportTest, JsonRoundTripsCellsAndColumns) {
  const std::string json = SampleReport().RenderJson();
  // Every cell value must survive into the document (with escaping).
  EXPECT_NE(json.find("\"comma, cell\""), std::string::npos);
  EXPECT_NE(json.find("has \\\"quotes\\\""), std::string::npos);
  EXPECT_NE(json.find("\"columns\": [\"name\", \"value\"]"), std::string::npos);
}

TEST(ReportTest, ValidatorRejectsMalformedJson) {
  EXPECT_FALSE(report::ValidateJson("{\"a\": }").ok());
  EXPECT_FALSE(report::ValidateJson("{\"a\": 1,}").ok());
  EXPECT_FALSE(report::ValidateJson("{\"a\": \"unterminated}").ok());
  EXPECT_FALSE(report::ValidateJson("[1, 2").ok());
  EXPECT_FALSE(report::ValidateJson("{} trailing").ok());
  EXPECT_TRUE(report::ValidateJson("[1, 2.5, -3e4, true, null, \"s\"]").ok());
  EXPECT_TRUE(report::ValidateJson("{\"nested\": {\"a\": [{}]}}").ok());
  // Schema check needs the report keys.
  EXPECT_FALSE(report::ValidateReportJson("{\"schema\": 1}").ok());
}

// A tiny CSV reader for the round-trip check: splits `text` into rows of
// cells, honouring RFC-4180 quoting, skipping comment/blank lines.
std::vector<std::vector<std::string>> ParseCsv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] == '#') {  // comment line
      while (i < text.size() && text[i] != '\n') {
        ++i;
      }
      ++i;
      continue;
    }
    if (text[i] == '\n') {
      ++i;
      continue;
    }
    std::vector<std::string> row;
    std::string cell;
    while (i < text.size() && text[i] != '\n') {
      if (text[i] == '"') {
        ++i;
        while (i < text.size()) {
          if (text[i] == '"' && i + 1 < text.size() && text[i + 1] == '"') {
            cell += '"';
            i += 2;
          } else if (text[i] == '"') {
            ++i;
            break;
          } else {
            cell += text[i++];
          }
        }
      } else if (text[i] == ',') {
        row.push_back(cell);
        cell.clear();
        ++i;
      } else {
        cell += text[i++];
      }
    }
    row.push_back(cell);
    rows.push_back(row);
    ++i;
  }
  return rows;
}

TEST(ReportTest, CsvRoundTrip) {
  const Report r = SampleReport();
  const auto rows = ParseCsv(r.RenderCsv());
  // t1: header + 3 rows; t2: header + 1 row.
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"name", "value"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"plain", "1.00"}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"comma, cell", "2.50"}));
  EXPECT_EQ(rows[3], (std::vector<std::string>{"has \"quotes\"", "inf"}));
  EXPECT_EQ(rows[4], (std::vector<std::string>{"x"}));
  EXPECT_EQ(rows[5], (std::vector<std::string>{"y"}));
}

TEST(ReportTest, NumAndPenaltyFormatting) {
  EXPECT_EQ(Report::Num(12.345, 2), "12.35");
  EXPECT_EQ(Report::Num(7, 0), "7");
  EXPECT_EQ(Report::Penalty(8.0), "8.00%");
  EXPECT_EQ(Report::Penalty(42.25), "42.2%");
  EXPECT_EQ(Report::Penalty(9000.0), "9k%");
  EXPECT_EQ(Report::Penalty(1.0 / 0.0), "inf");
  EXPECT_EQ(Report::Int(123), "123");
}

// ---------------------------------------------------------------------------
// Result<T> hardening helpers.
// ---------------------------------------------------------------------------

Result<int> ParsePositive(int v) {
  if (v <= 0) {
    return Result<int>(ErrorCode::kInvalidArgument, "not positive");
  }
  return v;
}

Status UseAssignOrReturn(int v, int* out) {
  ZOMBIE_ASSIGN_OR_RETURN(const int parsed, ParsePositive(v));
  ZOMBIE_RETURN_IF_ERROR(Status::Ok());
  *out = parsed * 2;
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnPropagatesValueAndError) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  const Status failed = UseAssignOrReturn(-1, &out);
  EXPECT_EQ(failed.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(out, 42);  // untouched on the error path
}

TEST(ResultTest, ValueOrOnBothReferenceKinds) {
  const Result<std::string> good(std::string("yes"));
  const std::string fallback = "no";
  EXPECT_EQ(good.value_or(fallback), "yes");
  Result<std::string> bad(ErrorCode::kNotFound, "missing");
  EXPECT_EQ(bad.value_or(fallback), "no");
  EXPECT_EQ(Result<std::string>(std::string("moved")).value_or("no"), "moved");
  EXPECT_EQ(Result<std::string>(ErrorCode::kTimeout, "t").value_or("fb"), "fb");
}

// ---------------------------------------------------------------------------
// Golden byte-compares: fig08/table1 table output against the pre-port
// binaries' smoke-mode stdout.
// ---------------------------------------------------------------------------

std::string RunTableSmoke(const char* name) {
  auto found = ScenarioRegistry::Instance().Find(name);
  if (!found.ok()) {
    ADD_FAILURE() << found.status().ToString();
    return {};
  }
  RunOptions options;
  options.smoke = true;
  auto report = found.value()->Run(options);
  if (!report.ok()) {
    ADD_FAILURE() << report.status().ToString();
    return {};
  }
  return report.value().RenderTableText();
}

TEST(ScenarioGoldenTest, Fig08TableSmokeMatchesPrePortBinary) {
  // The .inc capture drops the trailing newline of the original stdout.
  EXPECT_EQ(RunTableSmoke("fig08"), std::string(kFig08SmokeGolden) + "\n");
}

TEST(ScenarioGoldenTest, Table1TableSmokeMatchesPrePortBinary) {
  EXPECT_EQ(RunTableSmoke("table1"), std::string(kTable1SmokeGolden) + "\n");
}

// fig08 (above) and this ablation are SweepSpec-driven since PR 4; their
// consolidated sweep tables must render byte-identically to the pre-port
// hand-written loops.
TEST(ScenarioGoldenTest, AblationMixedDepthSweepMatchesPrePortOutput) {
  EXPECT_EQ(RunTableSmoke("ablation_mixed_depth"),
            std::string(kAblationMixedDepthSmokeGolden) + "\n");
}

// Every registered scenario must produce a schema-valid JSON document in
// smoke mode (the ctest scenario_cli gate re-checks this through the CLI).
TEST(ScenarioGoldenTest, EveryScenarioEmitsSchemaValidJsonInSmokeMode) {
  RunOptions options;
  options.smoke = true;
  for (const Scenario* scenario : ScenarioRegistry::Instance().List()) {
    SCOPED_TRACE(scenario->name());
    auto report = scenario->Run(options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const std::string json = report.value().RenderJson();
    EXPECT_TRUE(report::ValidateReportJson(json).ok())
        << report::ValidateReportJson(json).ToString();
    EXPECT_TRUE(report.value().smoke());
  }
}

}  // namespace
}  // namespace zombie::scenario
