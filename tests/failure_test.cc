// Failure-injection tests: controller crashes mid-operation, reclaim racing
// paging traffic, double failover, zombie death below the fault-tolerance
// mirror, legacy (non-Sz) boards mixed into the rack, and fabric partitions.
#include <gtest/gtest.h>

#include <vector>

#include "src/cloud/faults.h"
#include "src/cloud/rack.h"
#include "src/hv/backend.h"
#include "src/remotemem/memory_manager.h"
#include "src/workloads/app_models.h"
#include "src/workloads/runner.h"

namespace zombie {
namespace {

using cloud::Rack;
using cloud::RackConfig;
using cloud::Server;

RackConfig TestRack() {
  RackConfig config;
  config.buff_size = 4 * kMiB;
  config.materialize_memory = false;
  return config;
}

class FailureTest : public ::testing::Test {
 protected:
  FailureTest() : rack_(TestRack()) {
    auto profile = acpi::MachineProfile::HpCompaqElite8300();
    user_ = &rack_.AddServer("user", profile, {8, 16 * kGiB});
    zombie_ = &rack_.AddServer("zombie", profile, {8, 16 * kGiB});
    spare_ = &rack_.AddServer("spare", profile, {8, 16 * kGiB});
  }

  Rack rack_;
  Server* user_ = nullptr;
  Server* zombie_ = nullptr;
  Server* spare_ = nullptr;
};

// ---------------------------------------------------------------------------
// Controller failure and failover.
// ---------------------------------------------------------------------------

TEST_F(FailureTest, FailoverPreservesInFlightAllocations) {
  ASSERT_TRUE(rack_.PushToZombie(zombie_->id()).ok());
  auto extent = rack_.manager(user_->id()).AllocExtension(16 * kMiB);
  ASSERT_TRUE(extent.ok());
  ASSERT_TRUE(extent.value()->WritePage(3, {}).ok());

  rack_.FailPrimaryController();
  for (int i = 0; i < 3; ++i) {
    rack_.PumpHeartbeat();
  }

  // Data path is unaffected by the control-plane failover: one-sided reads
  // keep flowing against the zombie.
  EXPECT_TRUE(extent.value()->ReadPage(3, {}).ok());
  // The promoted controller still tracks the allocation as ours: releasing
  // a buffer we hold succeeds, releasing a foreign one fails.
  auto ids = extent.value()->buffer_ids();
  EXPECT_TRUE(rack_.controller().GsRelease(user_->id(), {ids[0]}).ok());
  EXPECT_FALSE(rack_.controller().GsRelease(spare_->id(), {ids[1]}).ok());
}

TEST_F(FailureTest, HeartbeatFlappingDoesNotFailOver) {
  const auto* controller_before = &rack_.controller();
  // Miss two beats (below the threshold of 3), then recover, repeatedly.
  for (int round = 0; round < 4; ++round) {
    rack_.FailPrimaryController();  // silences heartbeats
    rack_.PumpHeartbeat();
    rack_.PumpHeartbeat();
    // Primary recovers before the third miss; the next pump delivers a
    // fresh beat and resets the miss counter.
    rack_.RevivePrimaryController();
    rack_.PumpHeartbeat();
  }
  EXPECT_EQ(&rack_.controller(), controller_before);
  EXPECT_FALSE(rack_.secondary().failed_over());
}

// ---------------------------------------------------------------------------
// Zombie death / reclaim racing the data path.
// ---------------------------------------------------------------------------

TEST_F(FailureTest, ReclaimMidWorkloadFallsBackToMirror) {
  ASSERT_TRUE(rack_.PushToZombie(zombie_->id()).ok());
  auto extent = rack_.manager(user_->id()).AllocExtension(8 * kMiB);
  ASSERT_TRUE(extent.ok());
  hv::RemoteBackend backend(extent.value());

  // Run half a workload, reclaim the zombie mid-flight, run the rest.
  // Uniform accesses over the footprint guarantee steady paging traffic.
  workloads::AppProfile app;
  app.reserved_memory = 8 * kMiB;
  app.working_set = 7 * kMiB;
  app.pattern.tiers = {};  // pure uniform
  app.pattern.write_ratio = 0.4;
  app.accesses = 40'000;
  workloads::WorkloadRunner runner;
  const auto first_half = runner.RunRamExt(app, 0.5, &backend);
  EXPECT_GT(first_half.pager.major_faults, 0u);

  ASSERT_TRUE(rack_.WakeServer(zombie_->id()).ok());  // reclaims everything

  const auto second_half = runner.RunRamExt(app, 0.5, &backend);
  // Still completes — but slower, since reloads now hit the local mirror.
  EXPECT_GT(second_half.sim_time, first_half.sim_time);
  EXPECT_GT(extent.value()->mirror_reads(), 0u);
}

TEST_F(FailureTest, UnwrittenPagesAreLostAfterReclaim) {
  ASSERT_TRUE(rack_.PushToZombie(zombie_->id()).ok());
  auto extent = rack_.manager(user_->id()).AllocExtension(8 * kMiB);
  ASSERT_TRUE(extent.ok());
  ASSERT_TRUE(extent.value()->WritePage(0, {}).ok());
  ASSERT_TRUE(rack_.WakeServer(zombie_->id()).ok());
  EXPECT_TRUE(extent.value()->ReadPage(0, {}).ok());              // mirrored
  EXPECT_EQ(extent.value()->ReadPage(1, {}).code(), ErrorCode::kNotFound);  // never written
}

TEST_F(FailureTest, SuddenZombiePowerLossBlocksDataPath) {
  ASSERT_TRUE(rack_.PushToZombie(zombie_->id()).ok());
  auto extent = rack_.manager(user_->id()).AllocExtension(8 * kMiB);
  ASSERT_TRUE(extent.ok());
  ASSERT_TRUE(extent.value()->WritePage(5, {}).ok());

  // Crash: the host drops to S5 without any reclaim protocol.
  zombie_->machine().ospm().Wake();
  ASSERT_TRUE(zombie_->machine().Suspend(acpi::SleepState::kS5).ok());

  // One-sided ops now fail (memory rail down)...
  auto read = extent.value()->ReadPage(5, {});
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.code(), ErrorCode::kUnavailable);
  // ...until the user marks the buffers dead, after which the mirror serves.
  extent.value()->OnBuffersReclaimed(extent.value()->buffer_ids());
  auto mirrored = extent.value()->ReadPage(5, {});
  ASSERT_TRUE(mirrored.ok());
  EXPECT_GE(mirrored.value(), 25 * kMicrosecond);
}

// ---------------------------------------------------------------------------
// Legacy hardware in the rack.
// ---------------------------------------------------------------------------

TEST(FailureLegacy, NonSzBoardRefusesZombieButWorksOtherwise) {
  Rack rack(TestRack());
  auto profile = acpi::MachineProfile::HpCompaqElite8300();
  rack.AddServer("user", profile, {8, 16 * kGiB});
  Server& legacy = rack.AddServer("legacy", profile, {8, 16 * kGiB},
                                  /*sz_capable=*/false);
  Server& modern = rack.AddServer("modern", profile, {8, 16 * kGiB});

  EXPECT_EQ(rack.PushToZombie(legacy.id()).code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(legacy.machine().state(), acpi::SleepState::kS0);
  // The legacy box can still S3 (no lending) and the modern one zombifies.
  EXPECT_TRUE(rack.PushToSleep(legacy.id(), acpi::SleepState::kS3).ok());
  EXPECT_TRUE(rack.PushToZombie(modern.id()).ok());
  EXPECT_GT(rack.controller().FreeRemoteBytes(), 0u);
}

// ---------------------------------------------------------------------------
// Allocation failures leave no leaks.
// ---------------------------------------------------------------------------

TEST_F(FailureTest, FailedGuaranteedAllocationRollsBack) {
  ASSERT_TRUE(rack_.PushToZombie(zombie_->id()).ok());
  const Bytes pool = rack_.controller().FreeRemoteBytes();
  // Ask for more than the rack holds (escalation finds no slack: the spare
  // keeps its 25% floor, the user too).
  auto extent = rack_.manager(user_->id()).AllocExtension(64 * kGiB);
  EXPECT_FALSE(extent.ok());
  EXPECT_EQ(extent.code(), ErrorCode::kOutOfMemory);
  // Everything the failed allocation touched was released.
  EXPECT_GE(rack_.controller().FreeRemoteBytes(), pool);
  // And a sane allocation still succeeds afterwards.
  EXPECT_TRUE(rack_.manager(user_->id()).AllocExtension(8 * kMiB).ok());
}

TEST_F(FailureTest, DelegationFailureLeavesNoRegions) {
  // A server whose memory is not accessible cannot register regions.
  ASSERT_TRUE(spare_->machine().Suspend(acpi::SleepState::kS3).ok());
  auto& mgr = rack_.manager(spare_->id());
  auto delegated = mgr.DelegateActive(16 * kMiB);
  EXPECT_FALSE(delegated.ok());
  EXPECT_TRUE(mgr.delegated().empty());
  EXPECT_EQ(rack_.controller().FreeRemoteBytes(), 0u);
}

// ---------------------------------------------------------------------------
// Lease protocol end-to-end: silent host death, fabric partitions and the
// FaultInjector, all driven through Rack::Tick's simulated time.
// ---------------------------------------------------------------------------

TEST_F(FailureTest, SilentHostDeathExpiresLeaseAndLeavesNoOrphans) {
  ASSERT_TRUE(rack_.PushToZombie(zombie_->id()).ok());
  auto extent = rack_.manager(user_->id()).AllocExtension(8 * kMiB);
  ASSERT_TRUE(extent.ok());
  ASSERT_TRUE(extent.value()->WritePage(3, {}).ok());

  // The host drops off the fabric without a word: the control plane can only
  // learn through the missed-heartbeat deadline (ttl = 3 ticks).
  ASSERT_TRUE(rack_.KillHost(zombie_->id()).ok());
  std::vector<remotemem::ExpiryRecord> expired;
  for (int i = 0; i < 6 && expired.empty(); ++i) {
    expired = rack_.Tick();
  }
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].host, zombie_->id());
  EXPECT_FALSE(expired[0].hosted_dropped.empty());

  // Cleanup was complete: no orphaned buffers, invariants hold, and the
  // US_reclaim notice flipped the extent to its local mirror.
  EXPECT_TRUE(rack_.plane().OrphanedBuffers(rack_.now()).empty());
  EXPECT_TRUE(rack_.plane().CheckInvariants().ok());
  EXPECT_TRUE(extent.value()->ReadPage(3, {}).ok());
  EXPECT_GT(extent.value()->mirror_reads(), 0u);
  // The dead host's lease is gone for good until it re-registers.
  EXPECT_FALSE(rack_.plane().LeaseLive(zombie_->id(), rack_.now()));
}

TEST_F(FailureTest, PartitionHealReadmitsHostsWithBumpedEpoch) {
  ASSERT_TRUE(rack_.PushToZombie(zombie_->id()).ok());
  const std::uint64_t epoch_before = rack_.plane().LeaseEpoch(user_->id());
  ASSERT_GT(epoch_before, 0u);

  // Cut every server off from the (single) controller shard: renewals fail,
  // all leases lapse at the deadline even though the hosts are healthy.
  rack_.SetShardPartition(0, /*broken=*/true);
  std::vector<remotemem::ExpiryRecord> expired;
  for (int i = 0; i < 6 && expired.empty(); ++i) {
    expired = rack_.Tick();
  }
  ASSERT_EQ(expired.size(), 3u);  // user, zombie, spare — ascending by id
  EXPECT_EQ(expired[0].host, user_->id());
  EXPECT_FALSE(rack_.plane().LeaseLive(user_->id(), rack_.now()));

  // Heal: the next renewal round re-admits every live host under a fresh
  // lease epoch (a new incarnation, so stale grants can be fenced).
  rack_.SetShardPartition(0, /*broken=*/false);
  rack_.Tick();
  EXPECT_TRUE(rack_.plane().LeaseLive(user_->id(), rack_.now()));
  EXPECT_GT(rack_.plane().LeaseEpoch(user_->id()), epoch_before);
  EXPECT_TRUE(rack_.plane().OrphanedBuffers(rack_.now()).empty());
  EXPECT_TRUE(rack_.plane().CheckInvariants().ok());
}

TEST_F(FailureTest, HeartbeatDropShorterThanTtlIsAbsorbed) {
  ASSERT_TRUE(rack_.PushToZombie(zombie_->id()).ok());
  // Flaky NIC: the user misses one renewal window (< ttl), nothing expires.
  rack_.DropHeartbeatsUntil(user_->id(), rack_.now() + 150 * kMillisecond);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(rack_.Tick().empty());
  }
  EXPECT_TRUE(rack_.plane().LeaseLive(user_->id(), rack_.now()));
}

TEST_F(FailureTest, FaultInjectorFiresPlanInSimTimeOrder) {
  ASSERT_TRUE(rack_.PushToZombie(zombie_->id()).ok());
  const Duration tick = TestRack().tick_period;

  cloud::FaultPlan plan;
  plan.events = {
      {.at = 2 * tick, .kind = cloud::FaultKind::kControllerCrash, .shard = 0},
      {.at = 5 * tick,
       .kind = cloud::FaultKind::kPartition,
       .shard = 0,
       .duration = 2 * tick},
      {.at = 12 * tick, .kind = cloud::FaultKind::kHostCrash, .host = zombie_->id()},
  };
  cloud::FaultInjector injector(&rack_, plan);
  EXPECT_EQ(injector.fired(), 0u);

  std::size_t expiries = 0;
  for (int i = 0; i < 20; ++i) {
    injector.AdvanceTo(rack_.now() + tick);
    expiries += rack_.Tick().size();
  }
  EXPECT_EQ(injector.fired(), plan.events.size());
  EXPECT_TRUE(injector.done());  // includes: the partition healed itself

  // The controller crash was absorbed by failover, the short partition
  // healed below the ttl, and only the host crash cost a lease.
  EXPECT_TRUE(rack_.secondary().failed_over());
  EXPECT_EQ(expiries, 1u);
  EXPECT_FALSE(rack_.plane().LeaseLive(zombie_->id(), rack_.now()));
  EXPECT_TRUE(rack_.plane().LeaseLive(user_->id(), rack_.now()));
  EXPECT_TRUE(rack_.plane().OrphanedBuffers(rack_.now()).empty());
  EXPECT_TRUE(rack_.plane().CheckInvariants().ok());
}

}  // namespace
}  // namespace zombie
