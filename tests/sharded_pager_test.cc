// Tests for the concurrent data plane (per-vCPU paging shards with batched
// remote faults): the shards=1 bit-identity contract against the plain
// HostPager, determinism across thread counts, the rider/closer charging
// model of RemoteFaultBatcher, seeded home-shard assignment, and the
// lock-free ClientRing.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "src/common/units.h"
#include "src/hv/backend.h"
#include "src/hv/fault_batch.h"
#include "src/hv/page_table.h"
#include "src/hv/pager.h"
#include "src/hv/replacement.h"
#include "src/hv/sharded_pager.h"
#include "src/rdma/rpc.h"
#include "src/workloads/sharded_hotloop.h"

namespace zombie::hv {
namespace {

constexpr std::uint64_t kPages = 4096;
constexpr std::uint64_t kFrames = 2048;
constexpr std::uint64_t kAccesses = 20'000;
constexpr std::uint64_t kSeed = 99;
constexpr DeviceLatency kLatency{10 * kMicrosecond, 8 * kMicrosecond};

void ExpectStatsEq(const PagerStats& a, const PagerStats& b) {
  EXPECT_EQ(a.accesses, b.accesses);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.major_faults, b.major_faults);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.writebacks, b.writebacks);
  EXPECT_EQ(a.policy_cycles, b.policy_cycles);
  EXPECT_EQ(a.total_cost, b.total_cost);
}

// The historical single-threaded loop, verbatim: one HostPager charging the
// backend per page, fed by one seeded stream.
PagerStats RunPlainLoop(PolicyKind policy, const workloads::PatternParams& pattern) {
  DeviceBackend backend("remote-ram", kLatency);
  HostPager pager(kPages, kFrames, MakePolicy(policy, {}, 5), &backend, {});
  workloads::AccessPattern stream(kPages, pattern, kSeed);
  std::vector<workloads::PageAccess> buffer(1024);
  std::uint64_t remaining = kAccesses;
  while (remaining > 0) {
    const auto n = static_cast<std::size_t>(
        std::min<std::uint64_t>(buffer.size(), remaining));
    const std::span<workloads::PageAccess> slice(buffer.data(), n);
    stream.FillBatch(slice);
    pager.AccessBatch(slice);
    remaining -= n;
  }
  return pager.stats();
}

workloads::ShardedHotLoopResult RunSharded(PolicyKind policy, std::uint32_t shards,
                                           int threads, std::uint32_t batch_pages,
                                           const char* pattern = "tiered") {
  workloads::ShardedHotLoopOptions options;
  options.footprint_pages = kPages;
  options.local_frames = kFrames;
  options.policy = policy;
  options.pattern = workloads::HotloopPattern(pattern);
  options.accesses = kAccesses;
  options.seed = kSeed;
  options.shards = shards;
  options.threads = threads;
  options.fault_batch.batch_pages = batch_pages;
  options.backend_latency = kLatency;
  return workloads::RunShardedHotLoop(options);
}

// ---------------------------------------------------------------------------
// shards=1: the concurrent data plane collapses to the historical loop.
// ---------------------------------------------------------------------------

TEST(ShardedPagerTest, OneShardUnbatchedIsBitIdenticalToHostPager) {
  for (const PolicyKind policy : kAllPolicyKinds) {
    SCOPED_TRACE(PolicyKindName(policy));
    const PagerStats plain = RunPlainLoop(policy, workloads::HotloopPattern("tiered"));
    const auto sharded = RunSharded(policy, /*shards=*/1, /*threads=*/1,
                                    /*batch_pages=*/1);
    ExpectStatsEq(sharded.stats, plain);
  }
}

// Pins today's shards=1 fault counts (seed 99, tiered/zipf/scan, 20k
// accesses): the golden victim sequences of the concurrent data plane.  A
// change here means the replacement behaviour changed, not just the plumbing.
TEST(ShardedPagerTest, OneShardGoldenFaultCounts) {
  const struct {
    const char* pattern;
    std::uint64_t fifo, clock, mixed;
  } kGolden[] = {
      {"scan", 20000, 20000, 20000},
      {"zipf", 3466, 3469, 3399},
      {"tiered", 5985, 5993, 5639},
  };
  for (const auto& golden : kGolden) {
    SCOPED_TRACE(golden.pattern);
    EXPECT_EQ(RunSharded(PolicyKind::kFifo, 1, 1, 8, golden.pattern).stats.faults,
              golden.fifo);
    EXPECT_EQ(RunSharded(PolicyKind::kClock, 1, 1, 8, golden.pattern).stats.faults,
              golden.clock);
    EXPECT_EQ(RunSharded(PolicyKind::kMixed, 1, 1, 8, golden.pattern).stats.faults,
              golden.mixed);
  }
}

// Batching changes costs (riders pay the stream share) but never the
// replacement decisions: fault/eviction counters are batch-invariant.
TEST(ShardedPagerTest, BatchSizeNeverChangesVictimSelection) {
  const auto unbatched = RunSharded(PolicyKind::kMixed, 4, 1, 1);
  const auto batched = RunSharded(PolicyKind::kMixed, 4, 1, 16);
  EXPECT_EQ(unbatched.stats.faults, batched.stats.faults);
  EXPECT_EQ(unbatched.stats.major_faults, batched.stats.major_faults);
  EXPECT_EQ(unbatched.stats.evictions, batched.stats.evictions);
  EXPECT_EQ(unbatched.stats.writebacks, batched.stats.writebacks);
  EXPECT_EQ(unbatched.stats.policy_cycles, batched.stats.policy_cycles);
  EXPECT_GT(batched.rider_pages, 0u);
  EXPECT_LT(batched.round_trips, unbatched.round_trips);
}

// ---------------------------------------------------------------------------
// Thread count is wall-clock only: simulated results are a pure function of
// (seed, shards, batch).
// ---------------------------------------------------------------------------

TEST(ShardedPagerTest, ResultsIdenticalAcrossThreadCounts) {
  const auto serial = RunSharded(PolicyKind::kMixed, 4, 1, 8);
  for (const int threads : {2, 4, 8}) {
    SCOPED_TRACE(threads);
    const auto parallel = RunSharded(PolicyKind::kMixed, 4, threads, 8);
    ExpectStatsEq(parallel.stats, serial.stats);
    ASSERT_EQ(parallel.shard_stats.size(), serial.shard_stats.size());
    for (std::size_t s = 0; s < serial.shard_stats.size(); ++s) {
      SCOPED_TRACE(s);
      ExpectStatsEq(parallel.shard_stats[s], serial.shard_stats[s]);
    }
    EXPECT_EQ(parallel.round_trips, serial.round_trips);
    EXPECT_EQ(parallel.rider_pages, serial.rider_pages);
  }
}

TEST(ShardedPagerTest, MergedStatsIsShardOrderSumOfLanes) {
  const auto run = RunSharded(PolicyKind::kFifo, 4, 2, 8);
  PagerStats sum;
  for (const PagerStats& lane : run.shard_stats) {
    sum.accesses += lane.accesses;
    sum.faults += lane.faults;
    sum.major_faults += lane.major_faults;
    sum.evictions += lane.evictions;
    sum.writebacks += lane.writebacks;
    sum.policy_cycles += lane.policy_cycles;
    sum.total_cost += lane.total_cost;
  }
  EXPECT_EQ(run.stats.accesses, kAccesses);
  EXPECT_EQ(run.stats.faults, sum.faults);
  // MergedStats additionally folds in the per-lane drain cost (the final
  // partial batches' round trips), so total_cost can only exceed the sum.
  EXPECT_GE(run.stats.total_cost, sum.total_cost);
}

// ---------------------------------------------------------------------------
// RemoteFaultBatcher charging model.
// ---------------------------------------------------------------------------

TEST(FaultBatchTest, RidersPayStreamShareCloserPaysFullTrip) {
  rdma::ClientRing ring;
  FaultBatchConfig config;
  config.batch_pages = 4;
  config.stream_fraction = 0.25;
  RemoteFaultBatcher batcher(&ring, kLatency, config);

  const Duration stream_read = kLatency.read / 4;
  EXPECT_EQ(batcher.OnLoad(1), stream_read);
  EXPECT_EQ(batcher.OnLoad(2), stream_read);
  EXPECT_EQ(batcher.OnLoad(3), stream_read);
  EXPECT_EQ(batcher.round_trips(), 0u);  // nothing flushed yet
  EXPECT_EQ(batcher.OnLoad(4), kLatency.read);  // closes the batch
  EXPECT_EQ(batcher.round_trips(), 1u);
  EXPECT_EQ(batcher.rider_pages(), 3u);
  // Batch total: full + (n-1) * stream.
  EXPECT_EQ(kLatency.read + 3 * stream_read, kLatency.read + 3 * (kLatency.read / 4));
}

TEST(FaultBatchTest, DrainChargesTheOutstandingTrip) {
  rdma::ClientRing ring;
  FaultBatchConfig config;
  config.batch_pages = 4;
  config.stream_fraction = 0.25;
  RemoteFaultBatcher batcher(&ring, kLatency, config);

  EXPECT_EQ(batcher.Drain(), 0);  // nothing pending
  batcher.OnLoad(1);
  batcher.OnStore(2);  // last pending op prices the trip
  const Duration stream_write = kLatency.write / 4;
  EXPECT_EQ(batcher.Drain(), kLatency.write - stream_write);
  EXPECT_EQ(batcher.round_trips(), 1u);
  EXPECT_EQ(batcher.Drain(), 0);  // drained: idempotent
}

TEST(FaultBatchTest, BatchOfOneIsBitIdenticalToUnbatchedCharges) {
  rdma::ClientRing ring;
  FaultBatchConfig config;
  config.batch_pages = 1;
  RemoteFaultBatcher batcher(&ring, kLatency, config);
  // Every page closes its own batch and pays the full latency — exactly the
  // per-page backend charge of the unbatched path.
  EXPECT_EQ(batcher.OnLoad(7), kLatency.read);
  EXPECT_EQ(batcher.OnStore(8), kLatency.write);
  EXPECT_EQ(batcher.Drain(), 0);
  EXPECT_EQ(batcher.round_trips(), 2u);
  EXPECT_EQ(batcher.rider_pages(), 0u);
}

// ---------------------------------------------------------------------------
// Seeded home-shard assignment.
// ---------------------------------------------------------------------------

TEST(HomeShardTest, DeterministicAndSeedSensitive) {
  for (PageIndex page = 0; page < 64; ++page) {
    EXPECT_EQ(HomeShard(page, 42, 4), HomeShard(page, 42, 4));
    EXPECT_EQ(HomeShard(page, 42, 1), 0u);
  }
  // Different seeds must produce a different partition (splitmix64 mixes the
  // seed into every page's hash; 256 pages all landing identically would
  // mean the seed is ignored).
  std::size_t moved = 0;
  for (PageIndex page = 0; page < 256; ++page) {
    moved += HomeShard(page, 1, 4) != HomeShard(page, 2, 4) ? 1 : 0;
  }
  EXPECT_GT(moved, 0u);
}

TEST(HomeShardTest, RoughlyBalancedAcrossShards) {
  constexpr std::uint32_t kShards = 4;
  std::vector<std::uint64_t> counts(kShards, 0);
  for (PageIndex page = 0; page < kPages; ++page) {
    const std::uint32_t shard = HomeShard(page, kSeed, kShards);
    ASSERT_LT(shard, kShards);
    ++counts[shard];
  }
  // Loose bounds: a uniform hash puts ~1024 pages per shard; anything inside
  // [512, 1536] rules out degenerate clustering without being flaky.
  for (const std::uint64_t count : counts) {
    EXPECT_GT(count, kPages / kShards / 2);
    EXPECT_LT(count, kPages / kShards * 3 / 2);
  }
}

// ---------------------------------------------------------------------------
// ClientRing: the fixed ring of RPC slots shared by all lanes.
// ---------------------------------------------------------------------------

TEST(ClientRingTest, AcquireExhaustsThenReleaseRecycles) {
  rdma::ClientRing ring;
  std::set<std::size_t> held;
  for (std::size_t i = 0; i < rdma::ClientRing::kSlots; ++i) {
    std::size_t slot = 0;
    ASSERT_TRUE(ring.TryAcquire(&slot));
    EXPECT_TRUE(held.insert(slot).second) << "duplicate slot " << slot;
  }
  std::size_t slot = 0;
  EXPECT_FALSE(ring.TryAcquire(&slot));  // all slots busy
  ring.Release(*held.begin());
  ASSERT_TRUE(ring.TryAcquire(&slot));
  EXPECT_EQ(slot, *held.begin());
  EXPECT_EQ(ring.acquisitions(), rdma::ClientRing::kSlots + 1);
}

TEST(ClientRingTest, ConcurrentAcquireReleaseNeverDoubleGrants) {
  rdma::ClientRing ring;
  constexpr int kThreads = 4;
  constexpr int kRounds = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring] {
      for (int i = 0; i < kRounds; ++i) {
        const std::size_t slot = ring.Acquire();
        // Touch the slot payload while held: TSan would flag a double grant
        // as a data race on the payload bytes.
        rdma::PayloadWriter writer(&ring.slot(slot).request);
        writer.Reset();
        writer.PutU64(static_cast<std::uint64_t>(slot));
        ring.Release(slot);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(ring.acquisitions(), static_cast<std::uint64_t>(kThreads) * kRounds);
  // Every slot must be free again.
  for (std::size_t i = 0; i < rdma::ClientRing::kSlots; ++i) {
    std::size_t slot = 0;
    ASSERT_TRUE(ring.TryAcquire(&slot));
  }
}

}  // namespace
}  // namespace zombie::hv
