// Unit tests for the ACPI/power substrate: Sz state, power domains,
// registers, firmware, OSPM suspend path (Fig. 6), energy model (Table 3,
// eq. 1), machine behaviour.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/acpi/device.h"
#include "src/acpi/energy_model.h"
#include "src/acpi/firmware.h"
#include "src/acpi/machine.h"
#include "src/acpi/ospm.h"
#include "src/acpi/power_domain.h"
#include "src/acpi/power_meter.h"
#include "src/acpi/registers.h"
#include "src/acpi/sleep_state.h"

namespace zombie::acpi {
namespace {

// ---------------------------------------------------------------------------
// Sleep-state basics.
// ---------------------------------------------------------------------------

TEST(SleepState, KeywordRoundTrips) {
  for (auto s : {SleepState::kS0, SleepState::kS1, SleepState::kS2, SleepState::kS3,
                 SleepState::kS4, SleepState::kS5, SleepState::kSz}) {
    const auto back = SleepStateFromKeyword(SysPowerKeyword(s));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, s);
  }
  EXPECT_FALSE(SleepStateFromKeyword("bogus").has_value());
}

TEST(SleepState, ZombieKeywordIsZom) {
  EXPECT_EQ(SysPowerKeyword(SleepState::kSz), "zom");
}

TEST(SleepState, MemoryAccessibilityMatrix) {
  EXPECT_TRUE(MemoryRemotelyAccessible(SleepState::kS0));
  EXPECT_TRUE(MemoryRemotelyAccessible(SleepState::kSz));
  EXPECT_FALSE(MemoryRemotelyAccessible(SleepState::kS3));
  EXPECT_FALSE(MemoryRemotelyAccessible(SleepState::kS4));
  EXPECT_FALSE(MemoryRemotelyAccessible(SleepState::kS5));
}

TEST(SleepState, WakeCapability) {
  EXPECT_TRUE(WakeCapable(SleepState::kS3));
  EXPECT_TRUE(WakeCapable(SleepState::kSz));
  EXPECT_FALSE(WakeCapable(SleepState::kS0));
  EXPECT_FALSE(WakeCapable(SleepState::kS5));
}

// ---------------------------------------------------------------------------
// Power domains.
// ---------------------------------------------------------------------------

TEST(PowerPlane, S3CutsCpuKeepsDram) {
  PowerPlane plane(/*sz_capable=*/true);
  ASSERT_TRUE(plane.ApplyState(SleepState::kS3));
  EXPECT_FALSE(plane.RailEnergised(Component::kCpuComplex));
  EXPECT_TRUE(plane.RailEnergised(Component::kDram));
  EXPECT_FALSE(plane.RailEnergised(Component::kStorage));
  EXPECT_TRUE(plane.TransitionSettled());
}

TEST(PowerPlane, SzKeepsMemoryAndNicPath) {
  PowerPlane plane(/*sz_capable=*/true);
  ASSERT_TRUE(plane.ApplyState(SleepState::kSz));
  EXPECT_FALSE(plane.RailEnergised(Component::kCpuComplex));
  EXPECT_TRUE(plane.RailEnergised(Component::kDram));
  EXPECT_TRUE(plane.RailEnergised(Component::kIbNic));
  EXPECT_TRUE(plane.RailEnergised(Component::kPciePath));
}

TEST(PowerPlane, LegacyBoardRefusesSz) {
  PowerPlane plane(/*sz_capable=*/false);
  EXPECT_FALSE(plane.ApplyState(SleepState::kSz));
  // Rails untouched: still in S0 configuration.
  EXPECT_TRUE(plane.RailEnergised(Component::kCpuComplex));
  EXPECT_EQ(plane.applied_state(), SleepState::kS0);
}

TEST(PowerPlane, S4OnlyStandbyWell) {
  PowerPlane plane(/*sz_capable=*/true);
  ASSERT_TRUE(plane.ApplyState(SleepState::kS4));
  EXPECT_FALSE(plane.RailEnergised(Component::kDram));
  EXPECT_TRUE(plane.RailEnergised(Component::kIbNic));  // WoL well
  EXPECT_TRUE(plane.RailEnergised(Component::kPlatformBase));
}

TEST(PowerPlane, DescribeListsRails) {
  PowerPlane plane(true);
  plane.ApplyState(SleepState::kSz);
  const std::string desc = plane.Describe();
  EXPECT_NE(desc.find("cpu=off"), std::string::npos);
  EXPECT_NE(desc.find("dram=on"), std::string::npos);
}

// ---------------------------------------------------------------------------
// PM1 registers.
// ---------------------------------------------------------------------------

TEST(Registers, SlpTypRoundTrips) {
  for (auto s : {SleepState::kS0, SleepState::kS3, SleepState::kS4, SleepState::kS5,
                 SleepState::kSz}) {
    const auto back = SleepStateFromSlpTyp(SlpTypFor(s));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, s);
  }
  EXPECT_FALSE(SleepStateFromSlpTyp(0b111).has_value());
}

TEST(Registers, SzUsesPreviouslyUnusedEncoding) {
  // Sz claims 0b110, distinct from every legacy state.
  for (auto s : {SleepState::kS0, SleepState::kS1, SleepState::kS2, SleepState::kS3,
                 SleepState::kS4, SleepState::kS5}) {
    EXPECT_NE(SlpTypFor(SleepState::kSz), SlpTypFor(s));
  }
}

TEST(Registers, SleepRequiresBothRegistersConsistent) {
  Pm1Block pm1;
  const std::uint16_t value = Pm1Block::ComposeWrite(SleepState::kSz);
  pm1.pm1a.Write(value);
  EXPECT_FALSE(pm1.RequestedState().has_value());  // PM1B not yet written
  pm1.pm1b.Write(value);
  ASSERT_TRUE(pm1.RequestedState().has_value());
  EXPECT_EQ(*pm1.RequestedState(), SleepState::kSz);
}

TEST(Registers, MismatchedSlpTypRejected) {
  Pm1Block pm1;
  pm1.pm1a.Write(Pm1Block::ComposeWrite(SleepState::kS3));
  pm1.pm1b.Write(Pm1Block::ComposeWrite(SleepState::kS4));
  EXPECT_FALSE(pm1.RequestedState().has_value());
}

// ---------------------------------------------------------------------------
// Devices and the keep-up set.
// ---------------------------------------------------------------------------

TEST(DeviceTree, StandardServerHasKeepUpSet) {
  DeviceTree tree = DeviceTree::StandardServer();
  ASSERT_NE(tree.Find("mlx4_core"), nullptr);
  EXPECT_TRUE(tree.Find("mlx4_core")->keep_up_in_zombie());
  EXPECT_TRUE(tree.Find("pcie-root")->keep_up_in_zombie());
  EXPECT_FALSE(tree.Find("cpu0")->keep_up_in_zombie());
}

TEST(DeviceTree, SzSuspendSkipsKeepUpDevices) {
  DeviceTree tree = DeviceTree::StandardServer();
  const auto suspended = tree.SuspendAll(SleepState::kSz);
  // The IB card, PCIe path and DIMMs were not suspended.
  EXPECT_EQ(std::find(suspended.begin(), suspended.end(), "mlx4_core"), suspended.end());
  EXPECT_EQ(tree.Find("mlx4_core")->state(), DeviceState::kD0);
  EXPECT_EQ(tree.Find("mlx4_core")->skipped_suspends(), 1);
  // CPU and storage were.
  EXPECT_NE(std::find(suspended.begin(), suspended.end(), "cpu0"), suspended.end());
  EXPECT_EQ(tree.Find("cpu0")->state(), DeviceState::kD3Cold);
}

TEST(DeviceTree, S3SuspendsEverything) {
  DeviceTree tree = DeviceTree::StandardServer();
  tree.SuspendAll(SleepState::kS3);
  EXPECT_NE(tree.Find("mlx4_core")->state(), DeviceState::kD0);
  // Wake-capable NIC parks in D3hot, not D3cold.
  EXPECT_EQ(tree.Find("mlx4_core")->state(), DeviceState::kD3Hot);
  tree.ResumeAll();
  EXPECT_EQ(tree.Find("mlx4_core")->state(), DeviceState::kD0);
}

TEST(DeviceTree, DriverHooksFire) {
  DeviceTree tree = DeviceTree::StandardServer();
  int suspends = 0;
  int resumes = 0;
  tree.Find("sata0")->set_on_suspend([&](SleepState) { ++suspends; });
  tree.Find("sata0")->set_on_resume([&] { ++resumes; });
  tree.SuspendAll(SleepState::kS3);
  tree.ResumeAll();
  EXPECT_EQ(suspends, 1);
  EXPECT_EQ(resumes, 1);
}

// ---------------------------------------------------------------------------
// OSPM: the Fig. 6 execution path.
// ---------------------------------------------------------------------------

class OspmTest : public ::testing::Test {
 protected:
  OspmTest()
      : plane_(true), firmware_(&plane_), devices_(DeviceTree::StandardServer()),
        ospm_(&devices_, &firmware_) {
    firmware_.InitChipset();
  }

  PowerPlane plane_;
  Firmware firmware_;
  DeviceTree devices_;
  Ospm ospm_;
};

TEST_F(OspmTest, ZombieTransitionFollowsFig6Path) {
  auto result = ospm_.WriteSysPowerState("zom");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value(), SleepState::kSz);
  EXPECT_EQ(ospm_.current_state(), SleepState::kSz);

  const auto& trace = ospm_.call_trace();
  // The exact call sequence of Fig. 6.
  const std::vector<std::string> expected = {
      "echo zom > /sys/power/state",
      "pm_suspend",
      "enter_state",
      "suspend_prepare",
      "suspend_devices_and_enter",
      "suspend_enter",
      "acpi_suspend_enter",
      "x86_acpi_suspend_lowlevel",
      "do_suspend_lowlevel",
      "x86_acpi_enter_sleep_state",
      "acpi_hw_legacy_sleep",
      "acpi_os_prepare_sleep",
      "tboot_sleep",
  };
  EXPECT_EQ(trace, expected);
}

TEST_F(OspmTest, PreZombieHookFiresBeforeDevicesSuspend) {
  bool hook_fired = false;
  bool nic_was_up_at_hook = false;
  ospm_.set_pre_zombie_hook([&] {
    hook_fired = true;
    nic_was_up_at_hook = devices_.Find("cpu0")->state() == DeviceState::kD0;
  });
  ASSERT_TRUE(ospm_.WriteSysPowerState("zom").ok());
  EXPECT_TRUE(hook_fired);
  EXPECT_TRUE(nic_was_up_at_hook);  // delegation happens while CPU still runs
}

TEST_F(OspmTest, PreZombieHookNotFiredForS3) {
  bool hook_fired = false;
  ospm_.set_pre_zombie_hook([&] { hook_fired = true; });
  ASSERT_TRUE(ospm_.WriteSysPowerState("mem").ok());
  EXPECT_FALSE(hook_fired);
}

TEST_F(OspmTest, WakeRestoresS0AndFiresPostHook) {
  SleepState woke_from = SleepState::kS0;
  ospm_.set_post_wake_hook([&](SleepState from) { woke_from = from; });
  ASSERT_TRUE(ospm_.WriteSysPowerState("zom").ok());
  EXPECT_EQ(ospm_.Wake(), SleepState::kSz);
  EXPECT_EQ(ospm_.current_state(), SleepState::kS0);
  EXPECT_EQ(woke_from, SleepState::kSz);
  EXPECT_EQ(devices_.Find("cpu0")->state(), DeviceState::kD0);
}

TEST_F(OspmTest, RejectsUnknownKeyword) {
  EXPECT_EQ(ospm_.WriteSysPowerState("hibernate-ish").code(), ErrorCode::kInvalidArgument);
}

TEST_F(OspmTest, RejectsDoubleSuspend) {
  ASSERT_TRUE(ospm_.WriteSysPowerState("mem").ok());
  EXPECT_EQ(ospm_.WriteSysPowerState("zom").code(), ErrorCode::kFailedPrecondition);
}

TEST(OspmLegacy, LegacyBoardFailsZombieAndRollsBack) {
  PowerPlane plane(/*sz_capable=*/false);
  Firmware firmware(&plane);
  firmware.InitChipset();
  DeviceTree devices = DeviceTree::StandardServer();
  Ospm ospm(&devices, &firmware);

  auto result = ospm.WriteSysPowerState("zom");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.code(), ErrorCode::kFailedPrecondition);
  // Machine still awake and usable; devices resumed.
  EXPECT_EQ(ospm.current_state(), SleepState::kS0);
  EXPECT_EQ(devices.Find("cpu0")->state(), DeviceState::kD0);
  // S3 still works on the same board.
  EXPECT_TRUE(ospm.WriteSysPowerState("mem").ok());
}

// ---------------------------------------------------------------------------
// Energy model: Table 3 and equation (1).
// ---------------------------------------------------------------------------

TEST(EnergyModel, HpTable3RowReproduced) {
  const MachineProfile hp = MachineProfile::HpCompaqElite8300();
  EXPECT_NEAR(hp.ConfigPercent(MeasuredConfig::kS0WithoutIb), 46.16, 0.01);
  EXPECT_NEAR(hp.ConfigPercent(MeasuredConfig::kS0IbOff), 52.20, 0.01);
  EXPECT_NEAR(hp.ConfigPercent(MeasuredConfig::kS0IbOn), 53.84, 0.01);
  EXPECT_NEAR(hp.ConfigPercent(MeasuredConfig::kS3WithoutIb), 4.23, 0.01);
  EXPECT_NEAR(hp.ConfigPercent(MeasuredConfig::kS3WithIb), 11.03, 0.01);
  EXPECT_NEAR(hp.ConfigPercent(MeasuredConfig::kS4WithoutIb), 0.19, 0.01);
  EXPECT_NEAR(hp.ConfigPercent(MeasuredConfig::kS4WithIb), 6.81, 0.01);
}

TEST(EnergyModel, DellTable3RowReproduced) {
  const MachineProfile dell = MachineProfile::DellPrecisionT5810();
  EXPECT_NEAR(dell.ConfigPercent(MeasuredConfig::kS0WithoutIb), 35.35, 0.01);
  EXPECT_NEAR(dell.ConfigPercent(MeasuredConfig::kS0IbOff), 42.33, 0.01);
  EXPECT_NEAR(dell.ConfigPercent(MeasuredConfig::kS0IbOn), 44.77, 0.01);
  EXPECT_NEAR(dell.ConfigPercent(MeasuredConfig::kS3WithoutIb), 1.97, 0.01);
  EXPECT_NEAR(dell.ConfigPercent(MeasuredConfig::kS3WithIb), 8.71, 0.01);
  EXPECT_NEAR(dell.ConfigPercent(MeasuredConfig::kS4WithoutIb), 1.12, 0.01);
  EXPECT_NEAR(dell.ConfigPercent(MeasuredConfig::kS4WithIb), 8.31, 0.01);
}

TEST(EnergyModel, Equation1ReproducesPaperSzEstimates) {
  // Paper Table 3: Sz = 12.67% (HP) and 11.15% (Dell), via equation (1).
  EXPECT_NEAR(MachineProfile::HpCompaqElite8300().SzPercent(), 12.67, 0.01);
  EXPECT_NEAR(MachineProfile::DellPrecisionT5810().SzPercent(), 11.15, 0.01);
}

TEST(EnergyModel, SzModelCorrectionExceedsEq1) {
  // DRAM active-idle draws more than self-refresh, so the component-true
  // estimate sits above the paper's eq. (1).
  const MachineProfile hp = MachineProfile::HpCompaqElite8300();
  EXPECT_GT(hp.SzModelPercent(), hp.SzPercent());
}

TEST(EnergyModel, SzFarBelowIdleAndNearS3) {
  for (const auto& m :
       {MachineProfile::HpCompaqElite8300(), MachineProfile::DellPrecisionT5810()}) {
    EXPECT_LT(m.SzPercent(), 0.3 * m.S0Percent(0.0));       // way below idle S0
    EXPECT_GT(m.SzPercent(), m.SleepPercent(SleepState::kS3));  // slightly above S3
    EXPECT_LT(m.SzPercent() - m.SleepPercent(SleepState::kS3), 5.0);
  }
}

TEST(EnergyModel, S0CurveIsMonotoneAndConcave) {
  const MachineProfile hp = MachineProfile::HpCompaqElite8300();
  double prev = hp.S0Percent(0.0);
  for (double u = 0.1; u <= 1.0001; u += 0.1) {
    const double p = hp.S0Percent(u);
    EXPECT_GT(p, prev);
    prev = p;
  }
  EXPECT_NEAR(hp.S0Percent(1.0), 100.0, 0.01);
  // Concavity (energy-inefficiency at low load, Fig. 1): power at 50% load
  // exceeds half of the active swing above idle.
  const double idle = hp.S0Percent(0.0);
  EXPECT_GT(hp.S0Percent(0.5) - idle, 0.5 * (hp.S0Percent(1.0) - idle));
}

TEST(EnergyModel, IdealCurveIsProportional) {
  EXPECT_DOUBLE_EQ(EnergyProportionality::IdealPercent(0.0), 0.0);
  EXPECT_DOUBLE_EQ(EnergyProportionality::IdealPercent(0.5), 50.0);
  EXPECT_DOUBLE_EQ(EnergyProportionality::IdealPercent(1.0), 100.0);
}

// ---------------------------------------------------------------------------
// Machine + power meter.
// ---------------------------------------------------------------------------

TEST(Machine, ServesRemoteMemoryOnlyInS0AndSz) {
  Machine m("node1", MachineProfile::HpCompaqElite8300(), /*sz_capable=*/true);
  EXPECT_TRUE(m.ServesRemoteMemory());  // S0
  ASSERT_TRUE(m.Suspend(SleepState::kSz).ok());
  EXPECT_TRUE(m.ServesRemoteMemory());  // Sz: the whole point
  m.WakeOnLan();
  ASSERT_TRUE(m.Suspend(SleepState::kS3).ok());
  EXPECT_FALSE(m.ServesRemoteMemory());  // S3: RAM in self-refresh
}

TEST(Machine, PowerTracksStateAndUtilization) {
  Machine m("node1", MachineProfile::HpCompaqElite8300(), true);
  m.set_utilization(0.0);
  const double idle = m.PowerPercentNow();
  m.set_utilization(1.0);
  EXPECT_GT(m.PowerPercentNow(), idle);
  ASSERT_TRUE(m.Suspend(SleepState::kSz).ok());
  EXPECT_NEAR(m.PowerPercentNow(), 12.67, 0.01);
}

TEST(Machine, WakeLatencyMatchesFirmwareTable) {
  Machine m("node1", MachineProfile::HpCompaqElite8300(), true);
  ASSERT_TRUE(m.Suspend(SleepState::kSz).ok());
  const Duration latency = m.WakeOnLan();
  EXPECT_EQ(latency, m.firmware().latencies().sz_exit);
  EXPECT_EQ(m.state(), SleepState::kS0);
  EXPECT_EQ(m.WakeOnLan(), 0);  // already awake
}

TEST(PowerMeter, IntegratesEnergyOverTime) {
  Machine m("node1", MachineProfile::HpCompaqElite8300(), true);
  PowerMeter meter(&m);
  m.set_utilization(1.0);
  meter.Sample(10 * kSecond);  // 110 W * 10 s = 1100 J
  EXPECT_NEAR(meter.energy_joules(), 1100.0, 1.0);
  EXPECT_NEAR(meter.average_percent(), 100.0, 0.1);

  // Zombie decade: energy collapses by ~8x.
  meter.Reset();
  ASSERT_TRUE(m.Suspend(SleepState::kSz).ok());
  meter.Sample(10 * kSecond);
  EXPECT_NEAR(meter.average_percent(), 12.67, 0.1);
}

TEST(TransitionLatencies, SzTracksS3) {
  TransitionLatencies lat;
  EXPECT_EQ(lat.EnterLatency(SleepState::kSz), lat.EnterLatency(SleepState::kS3));
  EXPECT_EQ(lat.ExitLatency(SleepState::kSz), lat.ExitLatency(SleepState::kS3));
  EXPECT_GT(lat.ExitLatency(SleepState::kS5), lat.ExitLatency(SleepState::kS4));
}

}  // namespace
}  // namespace zombie::acpi
