// Tests for admission control (Section 4.4 guarantee) and the event-driven
// rack runtime (heartbeats, consolidation, hourly swap refresh).
#include <gtest/gtest.h>

#include "src/cloud/admission.h"
#include "src/cloud/rack.h"
#include "src/cloud/runtime.h"
#include "src/common/event_queue.h"

namespace zombie::cloud {
namespace {

hv::VmSpec MakeVm(hv::VmId id, Bytes reserved, std::uint32_t cpus) {
  hv::VmSpec vm;
  vm.id = id;
  vm.reserved_memory = reserved;
  vm.working_set = reserved / 2;
  vm.vcpus = cpus;
  return vm;
}

// ---------------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------------

TEST(Admission, AdmitsWithinBudget) {
  AdmissionController admission;
  admission.AddCapacity(64 * kGiB, 32);
  EXPECT_EQ(admission.MemoryBudget(), static_cast<Bytes>(0.85 * 64 * kGiB));
  EXPECT_TRUE(admission.Admit(MakeVm(1, 16 * kGiB, 8)).ok());
  EXPECT_TRUE(admission.Admit(MakeVm(2, 16 * kGiB, 8)).ok());
  EXPECT_TRUE(admission.IsAdmitted(1));
  EXPECT_EQ(admission.admitted_memory(), 32 * kGiB);
}

TEST(Admission, RejectsMemoryOvercommit) {
  AdmissionController admission;
  admission.AddCapacity(32 * kGiB, 32);
  EXPECT_TRUE(admission.Admit(MakeVm(1, 24 * kGiB, 4)).ok());
  // 24 + 8 > 0.85 * 32 = 27.2 GiB: must reject to keep GS_alloc_ext honest.
  auto st = admission.Admit(MakeVm(2, 8 * kGiB, 4));
  EXPECT_EQ(st.code(), ErrorCode::kOutOfMemory);
  EXPECT_FALSE(admission.IsAdmitted(2));
}

TEST(Admission, CpuOvercommitAllowedUpToFactor) {
  AdmissionController admission;
  admission.AddCapacity(640 * kGiB, 8);
  // 2x overcommit on 8 cpus: 16 vCPUs admissible.
  EXPECT_TRUE(admission.Admit(MakeVm(1, 1 * kGiB, 8)).ok());
  EXPECT_TRUE(admission.Admit(MakeVm(2, 1 * kGiB, 8)).ok());
  EXPECT_EQ(admission.Admit(MakeVm(3, 1 * kGiB, 1)).code(), ErrorCode::kOutOfMemory);
}

TEST(Admission, ReleaseReturnsBudget) {
  AdmissionController admission;
  admission.AddCapacity(32 * kGiB, 16);
  ASSERT_TRUE(admission.Admit(MakeVm(1, 24 * kGiB, 4)).ok());
  EXPECT_FALSE(admission.Admit(MakeVm(2, 24 * kGiB, 4)).ok());
  EXPECT_TRUE(admission.Release(1).ok());
  EXPECT_TRUE(admission.Admit(MakeVm(2, 24 * kGiB, 4)).ok());
  EXPECT_EQ(admission.Release(1).code(), ErrorCode::kNotFound);
}

TEST(Admission, DuplicateAndEmptyRejected) {
  AdmissionController admission;
  admission.AddCapacity(32 * kGiB, 16);
  ASSERT_TRUE(admission.Admit(MakeVm(1, 1 * kGiB, 1)).ok());
  EXPECT_EQ(admission.Admit(MakeVm(1, 1 * kGiB, 1)).code(), ErrorCode::kConflict);
  EXPECT_EQ(admission.Admit(MakeVm(2, 0, 1)).code(), ErrorCode::kInvalidArgument);
}

TEST(Admission, RetiredServerShrinksBudget) {
  AdmissionController admission;
  admission.AddCapacity(32 * kGiB, 16);
  admission.RemoveCapacity(16 * kGiB, 8);
  EXPECT_EQ(admission.MemoryBudget(), static_cast<Bytes>(0.85 * 16 * kGiB));
}

TEST(Admission, DoubleAdmitDoesNotDoubleCount) {
  AdmissionController admission;
  admission.AddCapacity(64 * kGiB, 32);
  ASSERT_EQ(admission.AdmitAt(0, 0, MakeVm(1, 8 * kGiB, 4)), AdmissionReject::kNone);
  const Bytes booked_memory = admission.admitted_memory();
  const std::uint32_t booked_cpus = admission.admitted_cpus();
  // A duplicate id must bounce without touching the books — otherwise a
  // retried request would shrink the budget for everyone else.
  EXPECT_EQ(admission.AdmitAt(0, 0, MakeVm(1, 8 * kGiB, 4)),
            AdmissionReject::kAlreadyAdmitted);
  EXPECT_EQ(admission.AdmitAt(0, 1, MakeVm(1, 2 * kGiB, 1)),
            AdmissionReject::kAlreadyAdmitted);
  EXPECT_EQ(admission.admitted_memory(), booked_memory);
  EXPECT_EQ(admission.admitted_cpus(), booked_cpus);
  // And one Release fully unwinds it; a second is NotFound, not a no-op.
  EXPECT_TRUE(admission.Release(1).ok());
  EXPECT_EQ(admission.admitted_memory(), 0u);
  EXPECT_EQ(admission.Release(1).code(), ErrorCode::kNotFound);
}

TEST(Admission, ReleaseUnknownVmIsNotFound) {
  AdmissionController admission;
  admission.AddCapacity(64 * kGiB, 32);
  EXPECT_EQ(admission.Release(99).code(), ErrorCode::kNotFound);
  EXPECT_EQ(admission.admitted_memory(), 0u);
  EXPECT_EQ(admission.admitted_cpus(), 0u);
}

TEST(Admission, TenantQuotaCapsIndependentlyOfRackBudget) {
  AdmissionController admission;
  admission.AddCapacity(640 * kGiB, 64);
  admission.SetTenantQuota(1, {.memory = 8 * kGiB, .cpus = 4.0});
  EXPECT_EQ(admission.AdmitAt(0, 1, MakeVm(1, 8 * kGiB, 2)), AdmissionReject::kNone);
  EXPECT_EQ(admission.AdmitAt(0, 1, MakeVm(2, 1 * kGiB, 1)),
            AdmissionReject::kTenantMemory);
  EXPECT_EQ(admission.AdmitAt(0, 1, MakeVm(3, 0 * kGiB + kMiB, 4)),
            AdmissionReject::kTenantMemory);
  // Another tenant is unaffected by tenant 1's quota.
  EXPECT_EQ(admission.AdmitAt(0, 2, MakeVm(4, 32 * kGiB, 8)), AdmissionReject::kNone);
  EXPECT_EQ(admission.tenant_memory(1), 8 * kGiB);
  EXPECT_EQ(admission.tenant_memory(2), 32 * kGiB);
}

TEST(Admission, TokenBucketThrottlesAndRefills) {
  AdmissionController admission;
  admission.AddCapacity(640 * kGiB, 64);
  admission.ConfigureThrottle({.rate_per_s = 10.0, .burst = 2.0});
  // Bucket starts full: two back-to-back admissions drain it.
  EXPECT_EQ(admission.AdmitAt(0, 0, MakeVm(1, 1 * kGiB, 1)), AdmissionReject::kNone);
  EXPECT_EQ(admission.AdmitAt(0, 0, MakeVm(2, 1 * kGiB, 1)), AdmissionReject::kNone);
  EXPECT_EQ(admission.AdmitAt(0, 0, MakeVm(3, 1 * kGiB, 1)), AdmissionReject::kThrottled);
  // 100ms at 10/s refills exactly one token.
  EXPECT_EQ(admission.AdmitAt(100 * kMillisecond, 0, MakeVm(3, 1 * kGiB, 1)),
            AdmissionReject::kNone);
  EXPECT_EQ(admission.AdmitAt(100 * kMillisecond, 0, MakeVm(4, 1 * kGiB, 1)),
            AdmissionReject::kThrottled);
}

TEST(Admission, RejectedRequestRefundsTokenExceptThrottle) {
  AdmissionController admission;
  admission.AddCapacity(8 * kGiB, 64);
  admission.ConfigureThrottle({.rate_per_s = 1.0, .burst = 1.0});
  // One token available; the request fails the rack budget, not the bucket,
  // so the token is refunded and the next attempt still gets a verdict.
  EXPECT_EQ(admission.AdmitAt(0, 0, MakeVm(1, 32 * kGiB, 1)),
            AdmissionReject::kRackMemory);
  EXPECT_EQ(admission.AdmitAt(0, 0, MakeVm(2, 1 * kGiB, 1)), AdmissionReject::kNone);
}

TEST(Admission, ResizeAppliesDeltaAtomically) {
  AdmissionController admission;
  admission.AddCapacity(64 * kGiB, 32);
  admission.SetTenantQuota(1, {.memory = 16 * kGiB, .cpus = 0.0});
  ASSERT_EQ(admission.AdmitAt(0, 1, MakeVm(1, 8 * kGiB, 4)), AdmissionReject::kNone);
  EXPECT_EQ(admission.Resize(1, 12 * kGiB, 6), AdmissionReject::kNone);
  EXPECT_EQ(admission.admitted_memory(), 12 * kGiB);
  EXPECT_EQ(admission.admitted_cpus(), 6u);
  EXPECT_EQ(admission.tenant_memory(1), 12 * kGiB);
  // A rejected resize (tenant quota) leaves the old booking untouched.
  EXPECT_EQ(admission.Resize(1, 20 * kGiB, 6), AdmissionReject::kTenantMemory);
  EXPECT_EQ(admission.admitted_memory(), 12 * kGiB);
  EXPECT_EQ(admission.tenant_memory(1), 12 * kGiB);
  // Resizing a VM that was never admitted is its own verdict.
  EXPECT_EQ(admission.Resize(7, 1 * kGiB, 1), AdmissionReject::kUnknownVm);
}

// ---------------------------------------------------------------------------
// RackRuntime over the event queue.
// ---------------------------------------------------------------------------

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() {
    config_.buff_size = 4 * kMiB;
    config_.materialize_memory = false;
    rack_ = std::make_unique<Rack>(config_);
    auto profile = acpi::MachineProfile::HpCompaqElite8300();
    rack_->AddServer("a", profile, {8, 16 * kGiB});
    rack_->AddServer("b", profile, {8, 16 * kGiB});
  }

  RackConfig config_;
  std::unique_ptr<Rack> rack_;
  EventQueue queue_;
};

TEST_F(RuntimeTest, HeartbeatsFlowOnSchedule) {
  RackRuntime runtime(rack_.get(), &queue_);
  runtime.Start();
  queue_.RunUntil(1 * kSecond);
  // 100 ms period -> 10 beats in a second.
  EXPECT_EQ(runtime.heartbeats_sent(), 10u);
  EXPECT_FALSE(rack_->secondary().failed_over());
}

TEST_F(RuntimeTest, SilentPrimaryFailsOverWithinThreeBeats) {
  RackRuntime runtime(rack_.get(), &queue_);
  runtime.Start();
  queue_.RunUntil(500 * kMillisecond);
  rack_->FailPrimaryController();
  // Within three heartbeat periods the monitor triggers failover, after
  // which the (promoted) primary resumes beating.
  queue_.RunUntil(900 * kMillisecond);
  EXPECT_TRUE(rack_->primary_alive());
  EXPECT_TRUE(rack_->secondary().failed_over());
}

TEST_F(RuntimeTest, PeriodicHooksFire) {
  RuntimeConfig rc;
  rc.consolidation_period = 10 * kMinute;
  rc.swap_refresh_period = 1 * kHour;
  RackRuntime runtime(rack_.get(), &queue_, rc);
  int consolidations = 0;
  int refreshes = 0;
  runtime.set_consolidation_hook([&] { ++consolidations; });
  runtime.set_swap_refresh_hook([&] { ++refreshes; });
  runtime.Start();
  queue_.RunUntil(2 * kHour);
  EXPECT_EQ(consolidations, 12);
  EXPECT_EQ(refreshes, 2);
  EXPECT_EQ(runtime.consolidation_rounds(), 12u);
  EXPECT_EQ(runtime.swap_refreshes(), 2u);
}

TEST_F(RuntimeTest, StopHaltsAllProcesses) {
  RackRuntime runtime(rack_.get(), &queue_);
  runtime.Start();
  queue_.RunUntil(300 * kMillisecond);
  const auto beats = runtime.heartbeats_sent();
  runtime.Stop();
  queue_.RunUntil(2 * kSecond);
  EXPECT_EQ(runtime.heartbeats_sent(), beats);
  // Restartable.
  runtime.Start();
  queue_.RunUntil(3 * kSecond);
  EXPECT_GT(runtime.heartbeats_sent(), beats);
}

TEST_F(RuntimeTest, StartIsIdempotent) {
  RackRuntime runtime(rack_.get(), &queue_);
  runtime.Start();
  runtime.Start();  // no double scheduling
  queue_.RunUntil(1 * kSecond);
  EXPECT_EQ(runtime.heartbeats_sent(), 10u);
}

}  // namespace
}  // namespace zombie::cloud
