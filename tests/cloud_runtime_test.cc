// Tests for admission control (Section 4.4 guarantee) and the event-driven
// rack runtime (heartbeats, consolidation, hourly swap refresh).
#include <gtest/gtest.h>

#include "src/cloud/admission.h"
#include "src/cloud/rack.h"
#include "src/cloud/runtime.h"
#include "src/common/event_queue.h"

namespace zombie::cloud {
namespace {

hv::VmSpec MakeVm(hv::VmId id, Bytes reserved, std::uint32_t cpus) {
  hv::VmSpec vm;
  vm.id = id;
  vm.reserved_memory = reserved;
  vm.working_set = reserved / 2;
  vm.vcpus = cpus;
  return vm;
}

// ---------------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------------

TEST(Admission, AdmitsWithinBudget) {
  AdmissionController admission;
  admission.AddCapacity(64 * kGiB, 32);
  EXPECT_EQ(admission.MemoryBudget(), static_cast<Bytes>(0.85 * 64 * kGiB));
  EXPECT_TRUE(admission.Admit(MakeVm(1, 16 * kGiB, 8)).ok());
  EXPECT_TRUE(admission.Admit(MakeVm(2, 16 * kGiB, 8)).ok());
  EXPECT_TRUE(admission.IsAdmitted(1));
  EXPECT_EQ(admission.admitted_memory(), 32 * kGiB);
}

TEST(Admission, RejectsMemoryOvercommit) {
  AdmissionController admission;
  admission.AddCapacity(32 * kGiB, 32);
  EXPECT_TRUE(admission.Admit(MakeVm(1, 24 * kGiB, 4)).ok());
  // 24 + 8 > 0.85 * 32 = 27.2 GiB: must reject to keep GS_alloc_ext honest.
  auto st = admission.Admit(MakeVm(2, 8 * kGiB, 4));
  EXPECT_EQ(st.code(), ErrorCode::kOutOfMemory);
  EXPECT_FALSE(admission.IsAdmitted(2));
}

TEST(Admission, CpuOvercommitAllowedUpToFactor) {
  AdmissionController admission;
  admission.AddCapacity(640 * kGiB, 8);
  // 2x overcommit on 8 cpus: 16 vCPUs admissible.
  EXPECT_TRUE(admission.Admit(MakeVm(1, 1 * kGiB, 8)).ok());
  EXPECT_TRUE(admission.Admit(MakeVm(2, 1 * kGiB, 8)).ok());
  EXPECT_EQ(admission.Admit(MakeVm(3, 1 * kGiB, 1)).code(), ErrorCode::kOutOfMemory);
}

TEST(Admission, ReleaseReturnsBudget) {
  AdmissionController admission;
  admission.AddCapacity(32 * kGiB, 16);
  ASSERT_TRUE(admission.Admit(MakeVm(1, 24 * kGiB, 4)).ok());
  EXPECT_FALSE(admission.Admit(MakeVm(2, 24 * kGiB, 4)).ok());
  EXPECT_TRUE(admission.Release(1).ok());
  EXPECT_TRUE(admission.Admit(MakeVm(2, 24 * kGiB, 4)).ok());
  EXPECT_EQ(admission.Release(1).code(), ErrorCode::kNotFound);
}

TEST(Admission, DuplicateAndEmptyRejected) {
  AdmissionController admission;
  admission.AddCapacity(32 * kGiB, 16);
  ASSERT_TRUE(admission.Admit(MakeVm(1, 1 * kGiB, 1)).ok());
  EXPECT_EQ(admission.Admit(MakeVm(1, 1 * kGiB, 1)).code(), ErrorCode::kConflict);
  EXPECT_EQ(admission.Admit(MakeVm(2, 0, 1)).code(), ErrorCode::kInvalidArgument);
}

TEST(Admission, RetiredServerShrinksBudget) {
  AdmissionController admission;
  admission.AddCapacity(32 * kGiB, 16);
  admission.RemoveCapacity(16 * kGiB, 8);
  EXPECT_EQ(admission.MemoryBudget(), static_cast<Bytes>(0.85 * 16 * kGiB));
}

// ---------------------------------------------------------------------------
// RackRuntime over the event queue.
// ---------------------------------------------------------------------------

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() {
    config_.buff_size = 4 * kMiB;
    config_.materialize_memory = false;
    rack_ = std::make_unique<Rack>(config_);
    auto profile = acpi::MachineProfile::HpCompaqElite8300();
    rack_->AddServer("a", profile, {8, 16 * kGiB});
    rack_->AddServer("b", profile, {8, 16 * kGiB});
  }

  RackConfig config_;
  std::unique_ptr<Rack> rack_;
  EventQueue queue_;
};

TEST_F(RuntimeTest, HeartbeatsFlowOnSchedule) {
  RackRuntime runtime(rack_.get(), &queue_);
  runtime.Start();
  queue_.RunUntil(1 * kSecond);
  // 100 ms period -> 10 beats in a second.
  EXPECT_EQ(runtime.heartbeats_sent(), 10u);
  EXPECT_FALSE(rack_->secondary().failed_over());
}

TEST_F(RuntimeTest, SilentPrimaryFailsOverWithinThreeBeats) {
  RackRuntime runtime(rack_.get(), &queue_);
  runtime.Start();
  queue_.RunUntil(500 * kMillisecond);
  rack_->FailPrimaryController();
  // Within three heartbeat periods the monitor triggers failover, after
  // which the (promoted) primary resumes beating.
  queue_.RunUntil(900 * kMillisecond);
  EXPECT_TRUE(rack_->primary_alive());
  EXPECT_TRUE(rack_->secondary().failed_over());
}

TEST_F(RuntimeTest, PeriodicHooksFire) {
  RuntimeConfig rc;
  rc.consolidation_period = 10 * kMinute;
  rc.swap_refresh_period = 1 * kHour;
  RackRuntime runtime(rack_.get(), &queue_, rc);
  int consolidations = 0;
  int refreshes = 0;
  runtime.set_consolidation_hook([&] { ++consolidations; });
  runtime.set_swap_refresh_hook([&] { ++refreshes; });
  runtime.Start();
  queue_.RunUntil(2 * kHour);
  EXPECT_EQ(consolidations, 12);
  EXPECT_EQ(refreshes, 2);
  EXPECT_EQ(runtime.consolidation_rounds(), 12u);
  EXPECT_EQ(runtime.swap_refreshes(), 2u);
}

TEST_F(RuntimeTest, StopHaltsAllProcesses) {
  RackRuntime runtime(rack_.get(), &queue_);
  runtime.Start();
  queue_.RunUntil(300 * kMillisecond);
  const auto beats = runtime.heartbeats_sent();
  runtime.Stop();
  queue_.RunUntil(2 * kSecond);
  EXPECT_EQ(runtime.heartbeats_sent(), beats);
  // Restartable.
  runtime.Start();
  queue_.RunUntil(3 * kSecond);
  EXPECT_GT(runtime.heartbeats_sent(), beats);
}

TEST_F(RuntimeTest, StartIsIdempotent) {
  RackRuntime runtime(rack_.get(), &queue_);
  runtime.Start();
  runtime.Start();  // no double scheduling
  queue_.RunUntil(1 * kSecond);
  EXPECT_EQ(runtime.heartbeats_sent(), 10u);
}

}  // namespace
}  // namespace zombie::cloud
