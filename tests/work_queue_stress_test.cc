// Contention stress for zombie::WorkQueue, the caller-participating batch
// scheduler behind `run -j N` and the threaded hot loop.  Nested RunBatch
// calls re-enter the queue from inside a running unit (exactly what a swept
// scenario does when its points spawn shard batches), and seeded per-unit
// jitter shuffles which worker helps which batch.  The assertions are
// completion counters; the real check is that the test terminates at all
// (no deadlock) and that TSan sees no races — CI runs it under
// ZOMBIE_SANITIZE=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/work_queue.h"

namespace zombie {
namespace {

// Deterministic per-unit jitter (splitmix64): a few hundred iterations of
// busy work so units finish out of order and helpers interleave.
void SpinJitter(std::uint64_t seed) {
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < (x % 512); ++i) {
    sink = sink + i;
  }
}

TEST(WorkQueueStressTest, NestedBatchesUnderContentionRunEveryUnitOnce) {
  constexpr std::size_t kOuter = 24;
  constexpr std::size_t kInner = 16;
  WorkQueue queue(4);
  std::atomic<std::uint64_t> outer_done{0};
  std::atomic<std::uint64_t> inner_done{0};
  std::vector<std::atomic<int>> outer_runs(kOuter);
  for (auto& run : outer_runs) {
    run.store(0);
  }

  queue.RunBatch(kOuter, [&](std::size_t i) {
    SpinJitter(i);
    // Re-enter the queue from inside a unit: the submitter participates in
    // its own inner batch and, while waiting, helps whatever other batch is
    // runnable — never sleeping while work exists (the no-deadlock part).
    queue.RunBatch(kInner, [&](std::size_t j) {
      SpinJitter(i * kInner + j);
      inner_done.fetch_add(1, std::memory_order_relaxed);
    });
    outer_runs[i].fetch_add(1, std::memory_order_relaxed);
    outer_done.fetch_add(1, std::memory_order_relaxed);
  });

  EXPECT_EQ(outer_done.load(), kOuter);
  EXPECT_EQ(inner_done.load(), kOuter * kInner);
  for (std::size_t i = 0; i < kOuter; ++i) {
    EXPECT_EQ(outer_runs[i].load(), 1) << "unit " << i;
  }
}

TEST(WorkQueueStressTest, RepeatedBatchesReuseIdleWorkers) {
  WorkQueue queue(3);
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 50; ++round) {
    queue.RunBatch(8, [&](std::size_t i) {
      SpinJitter(static_cast<std::uint64_t>(round) * 8 + i);
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50u * 8u);
}

TEST(WorkQueueStressTest, BudgetOneIsTheSerialLoop) {
  WorkQueue queue(1);
  std::vector<std::size_t> order;
  queue.RunBatch(10, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);  // index order, no interleaving
  }
}

}  // namespace
}  // namespace zombie
