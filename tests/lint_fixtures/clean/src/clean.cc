// Fixture: a source file with no findings.  The string literal below spells
// tokens the rules match ("rand(", "new int") to pin that literals are
// scrubbed before any rule runs.
#include "src/clean.h"

#include <memory>

namespace fixture {

int Add(int a, int b) { return a + b; }

const char* ScrubberBait() { return "rand( new int steady_clock"; }

std::unique_ptr<int> MakeOwned() { return std::make_unique<int>(3); }

}  // namespace fixture
