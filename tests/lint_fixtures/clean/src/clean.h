// Fixture: a header with no findings — the fallible API carries
// [[nodiscard]] and appears in tests/include_selfcheck.cc.
#ifndef LINT_FIXTURE_CLEAN_H_
#define LINT_FIXTURE_CLEAN_H_

namespace fixture {

class Status {};

[[nodiscard]] Status Connect(int fd);

int Add(int a, int b);

}  // namespace fixture

#endif  // LINT_FIXTURE_CLEAN_H_
