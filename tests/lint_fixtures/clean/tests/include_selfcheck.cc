// Fixture selfcheck TU for the clean tree: every src/ header is listed.
#include "src/clean.h"
