// Fixture: every violation shape silenced by a well-formed suppression —
// the file-wide form, the marker-on-own-line form (covers the next line),
// and the same-line form.  zombie-lint over this tree must exit 0.
// ZLINT-ALLOW-FILE(printf-family): fixture pinning the file-wide form.
#include <chrono>
#include <cstdio>

int* MakeSingleton() {
  // ZLINT-ALLOW(naked-new): fixture pinning the marker-line form.
  static int* leaked = new int(1);
  return leaked;
}

long Stamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // ZLINT-ALLOW(wall-clock): fixture pinning the same-line form.
}

void Warn() { std::fprintf(stderr, "fixture\n"); }
