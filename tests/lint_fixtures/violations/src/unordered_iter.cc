// Fixture: unordered-iter — range-for over an unordered container.
#include <unordered_map>

int Sum() {
  std::unordered_map<int, int> table;
  int total = 0;
  for (const auto& [key, value] : table) {
    total += value;
  }
  return total;
}
