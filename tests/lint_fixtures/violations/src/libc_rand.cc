// Fixture: libc-rand — globally-seeded libc randomness.
#include <cstdlib>

int Draw() { return rand(); }
