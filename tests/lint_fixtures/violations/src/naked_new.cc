// Fixture: naked-new — a raw new expression in library code.
int* Make() { return new int(7); }
