// Fixture: nodiscard-fallible — a Status-returning API without [[nodiscard]].
#ifndef LINT_FIXTURE_FALLIBLE_H_
#define LINT_FIXTURE_FALLIBLE_H_

namespace fixture {

class Status {};

Status Connect(int fd);

}  // namespace fixture

#endif  // LINT_FIXTURE_FALLIBLE_H_
