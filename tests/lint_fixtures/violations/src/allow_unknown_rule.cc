// Fixture: allow-unknown-rule — a suppression naming an unregistered rule.
// ZLINT-ALLOW(not-a-rule): believed harmless
int Answer() { return 42; }
