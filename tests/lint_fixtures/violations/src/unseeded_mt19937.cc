// Fixture: unseeded-mt19937 — a default-constructed engine.
#include <random>

unsigned Draw() {
  std::mt19937 gen;
  return gen();
}
