// Fixture: include-selfcheck — this header is deliberately absent from
// tests/include_selfcheck.cc in this mini-tree.
#ifndef LINT_FIXTURE_MISSING_H_
#define LINT_FIXTURE_MISSING_H_

namespace fixture {

inline int Seven() { return 7; }

}  // namespace fixture

#endif  // LINT_FIXTURE_MISSING_H_
