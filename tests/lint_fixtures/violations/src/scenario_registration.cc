// Fixture: scenario-registration — a catalog entry outside
// src/scenario/catalog_*.cc.
ZOMBIE_REGISTER_SCENARIO(fixture_scenario, MakeFixtureScenario());
