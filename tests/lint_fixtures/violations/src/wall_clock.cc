// Fixture: wall-clock — a real clock source in library code.
#include <chrono>

long Stamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
