// Fixture: printf-family — stderr emission bypassing common/logging.h.
#include <cstdio>

void Warn() { std::fprintf(stderr, "fixture warning\n"); }
