// Fixture: allow-missing-reason — a suppression with no written reason.
// ZLINT-ALLOW(naked-new)
int* Make() { return new int(1); }
