// Fixture selfcheck TU: lists src/fallible.h but not src/missing.h, so the
// include-selfcheck rule must flag exactly the missing one.
#include "src/fallible.h"
