// Rack consolidation scenario: a six-server rack with a skewed VM load is
// consolidated by the Neat planner in ZombieStack mode — underloaded hosts
// drain, empty hosts enter Sz and lend their RAM, and the rack's power draw
// drops while every byte of booked memory stays reachable.
//
// Run: ./rack_consolidation
#include <cstdio>
#include <vector>

#include "src/cloud/consolidation.h"
#include "src/cloud/placement.h"
#include "src/cloud/rack.h"
#include "src/common/table.h"

using namespace zombie;         // NOLINT: example brevity
using namespace zombie::cloud;  // NOLINT

namespace {

void PrintRack(Rack& rack, const char* title) {
  std::printf("%s\n", title);
  TextTable table({"server", "state", "VMs", "cpu util", "local mem GiB", "lent GiB",
                   "draw %"});
  for (const auto& server : rack.servers()) {
    table.AddRow({server->hostname(),
                  std::string(acpi::SleepStateName(server->machine().state())),
                  std::to_string(server->vms().size()),
                  TextTable::Num(server->CpuUtilization() * 100, 0) + "%",
                  TextTable::Num(static_cast<double>(server->UsedLocalMemory()) / kGiB, 1),
                  TextTable::Num(static_cast<double>(server->lent_memory()) / kGiB, 1),
                  TextTable::Num(server->machine().PowerPercentNow(), 1)});
  }
  table.Print();
  std::printf("rack draw: %.1f W\n\n", rack.TotalPowerWatts());
}

}  // namespace

int main() {
  std::printf("Rack consolidation with zombie servers\n");
  std::printf("======================================\n\n");

  Rack rack;
  for (int i = 0; i < 6; ++i) {
    rack.AddServer("node" + std::to_string(i + 1),
                   acpi::MachineProfile::DellPrecisionT5810(), {8, 16 * kGiB});
  }

  // A skewed load: two busy hosts, two lightly-loaded stragglers.
  auto make_vm = [](hv::VmId id, Bytes mem, std::uint32_t cpus) {
    hv::VmSpec vm;
    vm.id = id;
    vm.name = "vm" + std::to_string(id);
    vm.reserved_memory = mem;
    vm.working_set = mem / 2;
    vm.vcpus = cpus;
    return vm;
  };
  rack.servers()[0]->HostVm(make_vm(1, 6 * kGiB, 6), 6 * kGiB);
  rack.servers()[1]->HostVm(make_vm(2, 6 * kGiB, 5), 6 * kGiB);
  rack.servers()[2]->HostVm(make_vm(3, 2 * kGiB, 1), 2 * kGiB);
  rack.servers()[3]->HostVm(make_vm(4, 2 * kGiB, 1), 2 * kGiB);

  PrintRack(rack, "Before consolidation:");

  // Plan with the ZombieStack constraint: a migrated VM only needs 30% of
  // its working set locally on the target.
  NeatPlanner planner(
      ConsolidationConfig{ConsolidationMode::kZombieStack, 0.20, 0.90, 0.30});
  std::vector<Server*> hosts;
  for (const auto& s : rack.servers()) {
    hosts.push_back(s.get());
  }
  const ConsolidationPlan plan = planner.Plan(hosts);

  std::printf("Consolidation plan: %zu migrations, %zu hosts to suspend\n",
              plan.migrations.size(), plan.hosts_to_suspend.size());
  for (const auto& move : plan.migrations) {
    Server* from = rack.FindServer(move.from);
    Server* to = rack.FindServer(move.to);
    const hv::VmSpec vm = from->vms().at(move.vm);
    std::printf("  migrate vm%llu: %s -> %s (local share: %.1f GiB of %.1f GiB)\n",
                static_cast<unsigned long long>(move.vm), from->hostname().c_str(),
                to->hostname().c_str(),
                0.30 * static_cast<double>(vm.working_set) / kGiB,
                static_cast<double>(vm.reserved_memory) / kGiB);
    from->DropVm(move.vm);
    to->HostVm(vm, static_cast<Bytes>(0.30 * static_cast<double>(vm.working_set)));
  }
  for (auto id : plan.hosts_to_suspend) {
    auto status = rack.PushToZombie(id);
    std::printf("  suspend %s to Sz: %s\n", rack.FindServer(id)->hostname().c_str(),
                status.ToString().c_str());
  }
  std::printf("\n");

  PrintRack(rack, "After consolidation:");

  std::printf("Remote pool now holds %.1f GiB of zombie memory; the migrated VMs'\n"
              "non-local pages are served from it over one-sided RDMA.\n",
              static_cast<double>(rack.controller().FreeRemoteBytes()) / kGiB);
  return 0;
}
