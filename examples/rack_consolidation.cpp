// Rack consolidation scenario with zombie servers.
// Thin shim over the scenario registry: the walkthrough itself lives in
// src/scenario/catalog_examples.cc and is also reachable as
// `zombieland run ex_rack_consolidation`.
//
// Run: ./example_rack_consolidation
#include "src/scenario/driver.h"

int main(int argc, char** argv) {
  return zombie::scenario::ScenarioShimMain("ex_rack_consolidation", argc, argv);
}
