// Explicit SD scenario: a VM gets a swap device backed by a zombie server's
// RAM (the Infiniswap-style function of Section 4.5) and we compare it
// against local SSD and HDD swap, running the Elasticsearch workload model
// with 50% of its reserved memory as visible RAM.
//
// Run: ./remote_swap
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/hv/backend.h"
#include "src/workloads/app_models.h"
#include "src/workloads/runner.h"

using namespace zombie;             // NOLINT: example brevity
using namespace zombie::workloads;  // NOLINT

int main() {
  std::printf("Explicit SD: remote-RAM swap vs local devices\n");
  std::printf("=============================================\n\n");

  const AppProfile profile = ElasticsearchProfile();
  WorkloadRunner runner;
  const RunResult baseline = runner.RunLocalOnly(profile);
  std::printf("workload: %s, %.0f MiB reserved, WSS %.0f MiB, 50%% visible RAM\n",
              std::string(AppName(profile.app)).c_str(),
              static_cast<double>(profile.reserved_memory) / kMiB,
              static_cast<double>(profile.working_set) / kMiB);
  std::printf("baseline (all memory local): %.2f s simulated\n\n", baseline.seconds());

  TextTable table({"swap device", "exec (s)", "penalty", "major faults", "writebacks"});

  // Remote RAM served by a zombie server, allocated via GS_alloc_swap.
  bench::Testbed testbed(profile.reserved_memory);
  const RunResult remote = runner.RunExplicitSd(profile, 0.5, testbed.backend());
  table.AddRow({"zombie remote RAM", TextTable::Num(remote.seconds(), 2),
                TextTable::Penalty(PenaltyPercent(remote, baseline)),
                std::to_string(remote.pager.major_faults),
                std::to_string(remote.pager.writebacks)});

  auto ssd = hv::MakeLocalSsdBackend();
  const RunResult on_ssd = runner.RunExplicitSd(profile, 0.5, ssd.get());
  table.AddRow({"local SSD", TextTable::Num(on_ssd.seconds(), 2),
                TextTable::Penalty(PenaltyPercent(on_ssd, baseline)),
                std::to_string(on_ssd.pager.major_faults),
                std::to_string(on_ssd.pager.writebacks)});

  auto hdd = hv::MakeLocalHddBackend();
  const RunResult on_hdd = runner.RunExplicitSd(profile, 0.5, hdd.get());
  table.AddRow({"local HDD", TextTable::Num(on_hdd.seconds(), 2),
                TextTable::Penalty(PenaltyPercent(on_hdd, baseline)),
                std::to_string(on_hdd.pager.major_faults),
                std::to_string(on_hdd.pager.writebacks)});

  table.Print();

  // The RAM-Ext alternative for the same split, for contrast.
  bench::Testbed re_bed(profile.reserved_memory);
  const RunResult ram_ext = runner.RunRamExt(profile, 0.5, re_bed.backend());
  std::printf(
      "\nFor contrast, hypervisor-managed RAM Ext at the same 50%% split: %.2f s (%s)\n"
      "-- transparent paging beats a guest-visible swap device because the guest\n"
      "tunes itself down to the smaller RAM it sees (Section 6.4).\n",
      ram_ext.seconds(), TextTable::Penalty(PenaltyPercent(ram_ext, baseline)).c_str());
  return 0;
}
