// Explicit SD scenario: remote-RAM swap vs local devices.
// Thin shim over the scenario registry: the walkthrough itself lives in
// src/scenario/catalog_examples.cc and is also reachable as
// `zombieland run ex_remote_swap`.
//
// Run: ./example_remote_swap
#include "src/scenario/driver.h"

int main(int argc, char** argv) {
  return zombie::scenario::ScenarioShimMain("ex_remote_swap", argc, argv);
}
