// Quickstart: the zombieland API end to end.
// Thin shim over the scenario registry: the walkthrough itself lives in
// src/scenario/catalog_examples.cc and is also reachable as
// `zombieland run ex_quickstart`.
//
// Run: ./example_quickstart
#include "src/scenario/driver.h"

int main(int argc, char** argv) {
  return zombie::scenario::ScenarioShimMain("ex_quickstart", argc, argv);
}
