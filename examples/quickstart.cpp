// Quickstart: the zombieland API end to end.
//
// Builds the paper's 4-machine rack (global controller, secondary, a user
// server and a soon-to-be-zombie server), pushes a server into the Sz state
// through the real OSPM path (Fig. 6), lends its memory to the rack pool,
// allocates a RAM-Extension extent on the user server, moves real bytes over
// the simulated RDMA fabric into the *suspended* host's DRAM, and finally
// wakes the zombie, reclaiming its memory.
//
// Run: ./quickstart
#include <cstdio>
#include <vector>

#include "src/cloud/rack.h"

using namespace zombie;          // NOLINT: example brevity
using namespace zombie::cloud;   // NOLINT

int main() {
  std::printf("zombieland quickstart\n=====================\n\n");

  // 1. Assemble the rack.  materialize_memory=true so remote pages carry
  //    real bytes we can verify.
  RackConfig config;
  config.buff_size = 64 * kMiB;
  config.materialize_memory = true;
  Rack rack(config);
  auto profile = acpi::MachineProfile::HpCompaqElite8300();
  Server& ctr = rack.AddServer("global-ctr", profile, {8, 16 * kGiB});
  Server& ctr2 = rack.AddServer("secondary-ctr", profile, {8, 16 * kGiB});
  Server& user = rack.AddServer("server-A", profile, {8, 16 * kGiB});
  Server& zombie_box = rack.AddServer("server-C", profile, {8, 16 * kGiB});
  ctr.set_role(Role::kGlobalController);
  ctr2.set_role(Role::kSecondaryController);
  user.set_role(Role::kUser);
  std::printf("rack power now: %.1f W (all four servers idle in S0)\n",
              rack.TotalPowerWatts());

  // 2. Push server-C into the zombie state.  The OSPM pre-zombie hook makes
  //    its remote-mem-mgr delegate ~90% of its free RAM to the pool before
  //    the board's power rails drop.
  if (auto st = rack.PushToZombie(zombie_box.id()); !st.ok()) {
    std::printf("PushToZombie failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nserver-C entered %s; suspend path taken:\n",
              std::string(acpi::SleepStateName(zombie_box.machine().state())).c_str());
  for (const auto& fn : zombie_box.machine().ospm().call_trace()) {
    std::printf("  %s\n", fn.c_str());
  }
  std::printf("server-C lent %.1f GiB to the rack pool; draw fell to %.1f%% of max\n",
              static_cast<double>(zombie_box.lent_memory()) / kGiB,
              zombie_box.machine().PowerPercentNow());

  // 3. Allocate a guaranteed RAM-Extension extent on the user server.
  auto extent = rack.manager(user.id()).AllocExtension(1 * kGiB);
  if (!extent.ok()) {
    std::printf("AllocExtension failed: %s\n", extent.status().ToString().c_str());
    return 1;
  }
  std::printf("\nuser allocated %zu remote buffers (%.1f GiB)\n",
              extent.value()->buffer_count(),
              static_cast<double>(extent.value()->capacity()) / kGiB);

  // 4. One-sided RDMA against the sleeping host: write a page, read it back.
  std::vector<std::byte> page(kPageSize);
  for (std::size_t i = 0; i < page.size(); ++i) {
    page[i] = static_cast<std::byte>(i & 0xff);
  }
  auto wcost = extent.value()->WritePage(42, page);
  std::vector<std::byte> readback(kPageSize);
  auto rcost = extent.value()->ReadPage(42, readback);
  if (!wcost.ok() || !rcost.ok() || readback != page) {
    std::printf("remote page round-trip FAILED\n");
    return 1;
  }
  std::printf("page 42 round-tripped through the zombie's DRAM "
              "(write %.2f us, read %.2f us) -- its CPU never ran\n",
              static_cast<double>(wcost.value()) / kMicrosecond,
              static_cast<double>(rcost.value()) / kMicrosecond);

  // 5. Wake the zombie; the controller reclaims its buffers and the user's
  //    extent transparently falls back to the local backup mirror.
  auto latency = rack.WakeServer(zombie_box.id());
  std::printf("\nserver-C woke in %.1f s; page 42 now served from the local mirror: ",
              latency.ok() ? ToSeconds(latency.value()) : -1.0);
  auto after = extent.value()->ReadPage(42, readback);
  std::printf("%s (%.0f us)\n", after.ok() && readback == page ? "intact" : "LOST",
              after.ok() ? static_cast<double>(after.value()) / kMicrosecond : 0.0);

  std::printf("\nrack power now: %.1f W\n", rack.TotalPowerWatts());
  std::printf("\ndone.\n");
  return 0;
}
