// Migration scenario: vanilla pre-copy vs the ZombieStack protocol.
// Thin shim over the scenario registry: the walkthrough itself lives in
// src/scenario/catalog_examples.cc and is also reachable as
// `zombieland run ex_vm_migration`.
//
// Run: ./example_vm_migration_demo
#include "src/scenario/driver.h"

int main(int argc, char** argv) {
  return zombie::scenario::ScenarioShimMain("ex_vm_migration", argc, argv);
}
