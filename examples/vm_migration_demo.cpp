// Migration scenario: compare vanilla pre-copy live migration with the
// ZombieStack protocol (Section 5.3) for a 7 GiB VM across a range of
// working-set sizes and dirty rates, showing per-round transfer detail.
//
// Run: ./vm_migration_demo
#include <cstdio>

#include "src/common/table.h"
#include "src/migration/migration.h"

using namespace zombie;             // NOLINT: example brevity
using namespace zombie::migration;  // NOLINT

int main() {
  std::printf("VM migration: vanilla pre-copy vs ZombieStack\n");
  std::printf("=============================================\n\n");

  hv::VmSpec vm;
  vm.id = 1;
  vm.name = "demo-vm";
  vm.reserved_memory = 7 * kGiB;
  vm.working_set = 3 * kGiB;

  // Round-by-round detail for the default dirty rate.
  const MigrationEstimate native = PreCopyMigrate(vm);
  std::printf("Pre-copy rounds (7 GiB VM, 3 GiB WSS):\n");
  TextTable rounds({"round", "transferred (MiB)", "duration (s)"});
  for (std::size_t i = 0; i < native.rounds.size(); ++i) {
    const bool stop_and_copy = i + 1 == native.rounds.size();
    rounds.AddRow({stop_and_copy ? "stop-and-copy" : std::to_string(i + 1),
                   TextTable::Num(static_cast<double>(native.rounds[i].transferred) / kMiB, 0),
                   TextTable::Num(ToSeconds(native.rounds[i].duration), 3)});
  }
  rounds.Print();
  std::printf("total %.2f s, downtime %.0f ms, %.2f GiB moved\n\n", native.seconds(),
              ToSeconds(native.downtime) * 1000,
              static_cast<double>(native.bytes_moved) / kGiB);

  const MigrationEstimate zombie = ZombieMigrate(vm, /*local_fraction=*/0.5,
                                                 /*remote_buffers=*/56);
  std::printf("ZombieStack: stop-and-copy of the hot local part only.\n");
  std::printf("total %.2f s, downtime %.0f ms, %.2f GiB moved, 56 ownership updates\n\n",
              zombie.seconds(), ToSeconds(zombie.downtime) * 1000,
              static_cast<double>(zombie.bytes_moved) / kGiB);

  // Sensitivity to the dirty rate: pre-copy degrades with write-heavy VMs,
  // ZombieStack does not (the VM is stopped during its single copy).
  std::printf("Sensitivity to the VM's dirty rate:\n");
  TextTable sweep({"dirty WSS/s", "pre-copy (s)", "pre-copy downtime (ms)",
                   "zombiestack (s)"});
  for (double rate : {0.02, 0.08, 0.20, 0.40}) {
    MigrationConfig config;
    config.dirty_wss_fraction_per_sec = rate;
    const auto pre = PreCopyMigrate(vm, config);
    const auto zs = ZombieMigrate(vm, 0.5, 56, config);
    sweep.AddRow({TextTable::Num(rate, 2), TextTable::Num(pre.seconds(), 2),
                  TextTable::Num(ToSeconds(pre.downtime) * 1000, 0),
                  TextTable::Num(zs.seconds(), 2)});
  }
  sweep.Print();
  std::printf(
      "\nThe remote cold pages never move: after the switch the destination host\n"
      "addresses the same zombie buffers, only their ownership pointers change.\n");
  return 0;
}
