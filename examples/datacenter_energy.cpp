// Datacenter scenario: replay a synthetic cluster trace under all four
// resource-management policies and report energy, suspensions and
// migrations — a configurable, small-scale version of the Fig. 10 study.
//
// Run: ./datacenter_energy [servers] [tasks] [mem_to_cpu_ratio]
#include <cstdio>
#include <cstdlib>

#include "src/acpi/energy_model.h"
#include "src/common/table.h"
#include "src/sim/dc_sim.h"
#include "src/sim/trace.h"

using namespace zombie;       // NOLINT: example brevity
using namespace zombie::sim;  // NOLINT

int main(int argc, char** argv) {
  TraceConfig config;
  config.seed = 7;
  config.servers = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 100;
  config.tasks = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 2000;
  config.horizon = 1 * kDay;

  std::printf("Datacenter energy study: %zu servers, %zu tasks, 1 simulated day\n\n",
              config.servers, config.tasks);

  Trace trace = GenerateTrace(config);
  if (argc > 3) {
    trace = WithMemoryRatio(trace, std::atof(argv[3]));
    std::printf("memory bookings pinned to %.1fx CPU bookings\n\n", std::atof(argv[3]));
  }

  const auto profile = acpi::MachineProfile::DellPrecisionT5810();
  TextTable table({"policy", "energy (Emax*h)", "saving", "peak suspended", "migrations",
                   "mean active", "mem servers"});
  for (const DcResult& r : RunAllPolicies(trace, profile)) {
    table.AddRow({std::string(PolicyName(r.policy)), TextTable::Num(r.energy_units, 1),
                  TextTable::Num(r.saving_percent, 1) + "%",
                  std::to_string(r.suspended_peak), std::to_string(r.migrations),
                  TextTable::Num(r.mean_active_servers, 1),
                  std::to_string(r.memory_servers_peak)});
  }
  table.Print();

  std::printf(
      "\nZombieStack packs more VMs per active server because a VM only needs a\n"
      "fraction of its memory locally; drained servers keep serving their RAM\n"
      "from the Sz state at ~11%% of max power.\n"
      "\nTry: ./datacenter_energy 100 2000 2    (the paper's modified traces)\n");
  return 0;
}
