// Datacenter scenario: replay a synthetic cluster trace under all four
// resource-management policies — a configurable, small-scale version of the
// Fig. 10 study.  Thin shim over the scenario registry (`zombieland run
// ex_datacenter_energy --set servers=... --set tasks=... --set mem_ratio=...`).
//
// Run: ./datacenter_energy [servers] [tasks] [mem_to_cpu_ratio]
#include <string>

#include "src/scenario/driver.h"

int main(int argc, char** argv) {
  zombie::scenario::RunOptions options;
  options.smoke = zombie::scenario::EnvSmokeMode();
  if (argc > 1) {
    options.params["servers"] = argv[1];
  }
  if (argc > 2) {
    options.params["tasks"] = argv[2];
  }
  if (argc > 3) {
    options.params["mem_ratio"] = argv[3];
  }
  return zombie::scenario::RunAndPrint("ex_datacenter_energy", options);
}
