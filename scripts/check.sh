#!/usr/bin/env bash
# Full local verification, split into the stages the CI workflow runs as its
# matrix (.github/workflows/ci.yml).  Run from anywhere inside the repo.
#
#   scripts/check.sh                  # tier1 scenario faults serve diff perf asan
#   scripts/check.sh --fast           # same minus the sanitizer stage
#   scripts/check.sh tier1 scenario   # just the named stages
#
# Stages:
#   tier1     configure + build + ctest (build/), perf_smoke excluded — the
#             perf gate runs exactly once, in its own serial stage
#   scenario  every registered scenario emits schema-valid JSON; -j 4 output
#             is byte-identical to -j 1 (part of ctest too; re-run via the
#             CLI here so the gate works without ZOMBIE_BUILD_TESTS)
#   faults    fault-injection smoke: the `faults` ctest label (lease/failover
#             unit suites + the faults_* scenario family), then the fault
#             sweep re-run at -j 4 vs -j 1 — recovery must be deterministic
#             and every sweep point must report zero orphaned buffers
#   serve     online serving mode: the `serve` ctest label (stream/daemon
#             unit suite + the serve_* scenario family smoke), then the
#             serving sweeps re-run at -j 4 vs -j 1 — admission/placement
#             tail latencies and shed rates must be byte-identical
#   diff      regression gate: a fresh run of the catalog must stay within
#             bench/tolerances.json of the checked-in BENCH_scenarios.json
#             (`zombieland diff --fail-on-delta` exits 3 on any violation;
#             re-baseline deliberate changes with scripts/bench.sh)
#   perf      micro_hotloop vs the checked-in floor, serial.  Skipped when
#             ZOMBIE_SKIP_PERF=1 (escape hatch for CI runners with noisy
#             neighbors; the workflow sets it, local runs default to off)
#   asan      ASan/UBSan configure + build + ctest (build-asan/)
#   tsan      TSan configure + build (build-tsan/, ZOMBIE_SANITIZE=thread),
#             then the concurrent surface: the `threaded` ctest label (sharded
#             pager + WorkQueue stress suites and the hotloop_threaded smoke)
#             plus the `serve` and `faults` labels, and a micro_hotloop smoke
#             pass so the shard workers run under the race detector (no floor
#             gate — instrumentation overhead would always trip it)
#   bench     Release build (build-bench/) + the bench_smoke label
#   lint      static analysis: zombie-lint over the whole tree (BLOCKING —
#             any finding fails the stage; suppressions need a written
#             reason), the `lint` ctest label (engine unit tests, fixture
#             rules, the 0/1/2 exit-code contract, the include-selfcheck
#             configure gate), then clang-tidy over changed files when the
#             tool is on PATH (skipped gracefully otherwise — zombie-lint
#             is the dependency-free floor)
#
# ccache is used automatically when present.  Exit code is nonzero if any
# stage fails.  Every stage's wall-clock is printed at the end; when
# GITHUB_STEP_SUMMARY is set (CI), the same table plus `ccache -s` goes to
# the job summary.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

jobs="$(nproc 2>/dev/null || echo 4)"

cmake_args=()
if command -v ccache >/dev/null 2>&1; then
  cmake_args+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

stages=()
for arg in "$@"; do
  case "${arg}" in
    --fast) stages+=(lint tier1 scenario faults serve diff perf) ;;
    lint|tier1|scenario|faults|serve|diff|perf|asan|tsan|bench) stages+=("${arg}") ;;
    *)
      echo "check.sh: unknown argument '${arg}'" >&2
      echo "usage: scripts/check.sh [--fast] [lint|tier1|scenario|faults|serve|diff|perf|asan|tsan|bench ...]" >&2
      exit 2
      ;;
  esac
done
if [[ ${#stages[@]} -eq 0 ]]; then
  stages=(lint tier1 scenario faults serve diff perf asan tsan)
fi

# Per-stage wall-clock, reported at the end (and to the CI job summary).
stage_names=()
stage_secs=()

total=${#stages[@]}
n=0
for stage in "${stages[@]}"; do
  n=$((n + 1))
  stage_start=${SECONDS}
  case "${stage}" in
    lint)
      echo "==> [${n}/${total}] lint: zombie-lint (blocking) + ctest -L lint + clang-tidy"
      cmake -B build -S . "${cmake_args[@]}" >/dev/null
      cmake --build build -j "${jobs}" --target zombie-lint lint_test
      # The project linter is blocking: any finding at error severity fails
      # the stage.  Findings (if any) also land in the CI job summary.
      lint_rc=0
      ./build/zombie-lint --root=. | tee build/lint_findings.txt || lint_rc=$?
      if [[ -n "${GITHUB_STEP_SUMMARY:-}" && -s build/lint_findings.txt ]]; then
        {
          echo "### zombie-lint findings"
          echo ""
          echo '```'
          cat build/lint_findings.txt
          echo '```'
        } >> "${GITHUB_STEP_SUMMARY}"
      fi
      if [[ "${lint_rc}" -ne 0 ]]; then
        echo "check.sh: zombie-lint found violations (see above); suppress" >&2
        echo "only with a written reason: // ZLINT-ALLOW(rule): why" >&2
        exit "${lint_rc}"
      fi
      # The lint ctest label: engine unit tests, fixture rules, the 0/1/2
      # exit-code contract, and the include-selfcheck configure gate.
      ctest --test-dir build -L lint --output-on-failure -j "${jobs}"
      # clang-tidy over changed compiled files when the tool is available.
      # compile_commands.json is exported by the configure above; without
      # clang-tidy on PATH this is a graceful skip (offline containers) —
      # zombie-lint above is the dependency-free floor.
      if command -v clang-tidy >/dev/null 2>&1; then
        tidy_base="$(git merge-base origin/main HEAD 2>/dev/null || echo HEAD)"
        mapfile -t tidy_files < <(git diff --name-only --diff-filter=d \
          "${tidy_base}" -- 'src/*.cc' 'tools/*.cc' 2>/dev/null || true)
        if [[ ${#tidy_files[@]} -gt 0 ]]; then
          echo "    clang-tidy over ${#tidy_files[@]} changed file(s)"
          clang-tidy -p build "${tidy_files[@]}"
        else
          echo "    clang-tidy: no changed .cc files vs ${tidy_base}"
        fi
      else
        echo "    clang-tidy: not on PATH, skipping (zombie-lint already ran)"
      fi
      ;;
    tier1)
      echo "==> [${n}/${total}] tier-1: configure + build + ctest (build/)"
      cmake -B build -S . "${cmake_args[@]}"
      cmake --build build -j "${jobs}"
      # perf_smoke is excluded here; the perf stage runs it serially so the
      # throughput measurement is not polluted by parallel test load.
      ctest --test-dir build --output-on-failure -j "${jobs}" -LE perf_smoke
      ;;
    scenario)
      echo "==> [${n}/${total}] scenario gate: schema-valid JSON, -j 4 == -j 1"
      # The driver validates each document against the report schema before
      # emitting it; a scenario that fails to run or emits bad JSON fails
      # here.  The parallel run must be byte-identical to the serial one.
      cmake -B build -S . "${cmake_args[@]}" >/dev/null
      cmake --build build -j "${jobs}" --target zombieland
      ./build/zombieland run --all --smoke --format=json -j 1 --out=build/check_j1.json
      ./build/zombieland run --all --smoke --format=json -j 4 --out=build/check_j4.json
      cmp build/check_j1.json build/check_j4.json
      ./build/zombieland list > /dev/null
      ./build/zombieland params fig08 > /dev/null
      ;;
    faults)
      echo "==> [${n}/${total}] fault injection: ctest -L faults + deterministic recovery"
      cmake -B build -S . "${cmake_args[@]}" >/dev/null
      cmake --build build -j "${jobs}"
      # The labelled surface: lease/failover unit suites plus the faults_*
      # scenario family (whose runner fails any sweep point that does not
      # recover with zero orphaned buffers).
      ctest --test-dir build -L faults --output-on-failure -j "${jobs}"
      # Recovery must be deterministic: the fault sweep rendered with point
      # parallelism is byte-identical to the serial render.
      ./build/zombieland run faults_controlplane faults_timeline --smoke \
        --format=json -j 1 --out=build/faults_j1.json
      ./build/zombieland run faults_controlplane faults_timeline --smoke \
        --format=json -j 4 --out=build/faults_j4.json
      cmp build/faults_j1.json build/faults_j4.json
      ;;
    serve)
      echo "==> [${n}/${total}] online serving: ctest -L serve + deterministic SLO sweeps"
      cmake -B build -S . "${cmake_args[@]}" >/dev/null
      cmake --build build -j "${jobs}"
      # The labelled surface: the stream/daemon unit suite plus the serve_*
      # scenario family (serve_faults fails any sweep point that does not
      # recover with zero orphaned buffers).
      ctest --test-dir build -L serve --output-on-failure -j "${jobs}"
      # Tail-latency percentiles and shed rates must not depend on sweep
      # parallelism: the -j 4 render is byte-identical to the serial one.
      ./build/zombieland run serve_steady serve_spike serve_faults --smoke \
        --format=json -j 1 --out=build/serve_j1.json
      ./build/zombieland run serve_steady serve_spike serve_faults --smoke \
        --format=json -j 4 --out=build/serve_j4.json
      cmp build/serve_j1.json build/serve_j4.json
      ;;
    diff)
      echo "==> [${n}/${total}] diff gate: fresh run vs BENCH_scenarios.json"
      # The blocking regression gate CI runs: render the catalog and hold it
      # against the checked-in baseline under bench/tolerances.json.  Exit 3
      # means a metric moved beyond tolerance (or the catalog changed shape);
      # if the change is intentional, re-baseline with scripts/bench.sh and
      # commit the new BENCH_scenarios.json.
      cmake -B build -S . "${cmake_args[@]}" >/dev/null
      cmake --build build -j "${jobs}" --target zombieland
      ./build/zombieland run --all --smoke --format=json --timings \
        --out=build/diff_head.json
      ./build/zombieland diff --fail-on-delta --tolerances=bench/tolerances.json \
        BENCH_scenarios.json build/diff_head.json
      ;;
    perf)
      if [[ "${ZOMBIE_SKIP_PERF:-0}" == "1" ]]; then
        echo "==> [${n}/${total}] perf gate: skipped (ZOMBIE_SKIP_PERF=1)"
        continue
      fi
      echo "==> [${n}/${total}] perf gate: micro_hotloop vs the checked-in floor"
      ctest --test-dir build -L perf_smoke --output-on-failure
      ;;
    asan)
      echo "==> [${n}/${total}] ASan/UBSan: configure + build + ctest (build-asan/)"
      # perf_smoke is not registered under ZOMBIE_SANITIZE (instrumentation
      # would always trip the floor).
      cmake -B build-asan -S . -DZOMBIE_SANITIZE=ON "${cmake_args[@]}"
      cmake --build build-asan -j "${jobs}"
      ctest --test-dir build-asan --output-on-failure -j "${jobs}"
      ;;
    tsan)
      echo "==> [${n}/${total}] TSan: configure + build + the concurrent surface (build-tsan/)"
      # The race-detector lane for the per-vCPU data plane: shard workers,
      # the ClientRing slot protocol, WorkQueue nesting, and the existing
      # serve/faults threading all run instrumented.  perf_smoke is not
      # registered under ZOMBIE_SANITIZE.
      cmake -B build-tsan -S . -DZOMBIE_SANITIZE=thread "${cmake_args[@]}"
      cmake --build build-tsan -j "${jobs}"
      ctest --test-dir build-tsan -L 'threaded|serve|faults' \
        --output-on-failure -j "${jobs}"
      # micro_hotloop's threaded rows under TSan: smoke budget, no floor
      # arguments — this is a race hunt, not a throughput measurement.
      ZOMBIE_BENCH_SMOKE=1 ./build-tsan/micro_hotloop > /dev/null
      ./build-tsan/zombieland run hotloop_threaded --smoke --format=json \
        -j 4 --out=build-tsan/hotloop_threaded.json
      ;;
    bench)
      echo "==> [${n}/${total}] bench smoke: Release build + bench_smoke label"
      cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release "${cmake_args[@]}"
      cmake --build build-bench -j "${jobs}"
      ctest --test-dir build-bench -L bench_smoke --output-on-failure -j "${jobs}"
      ;;
  esac
  stage_names+=("${stage}")
  stage_secs+=("$((SECONDS - stage_start))")
done

echo "==> check.sh: all stages passed"
echo "==> stage wall-clock:"
for i in "${!stage_names[@]}"; do
  printf '    %-10s %4ss\n' "${stage_names[$i]}" "${stage_secs[$i]}"
done
if command -v ccache >/dev/null 2>&1; then
  echo "==> ccache stats:"
  ccache -s | sed 's/^/    /'
fi
if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
  {
    echo "### check.sh stages"
    echo ""
    echo "| stage | wall-clock |"
    echo "| --- | --- |"
    for i in "${!stage_names[@]}"; do
      echo "| ${stage_names[$i]} | ${stage_secs[$i]}s |"
    done
    if command -v ccache >/dev/null 2>&1; then
      echo ""
      echo "<details><summary>ccache -s</summary>"
      echo ""
      echo '```'
      ccache -s
      echo '```'
      echo "</details>"
    fi
  } >> "${GITHUB_STEP_SUMMARY}"
fi
