#!/usr/bin/env bash
# Full local verification: the tier-1 build+test and an ASan/UBSan pass (both
# include the bench_smoke label).  Run from anywhere inside the repo.
#
#   scripts/check.sh            # everything
#   scripts/check.sh --fast     # tier-1 only (skip sanitizers)
#
# Exit code is nonzero if any stage fails.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

jobs="$(nproc 2>/dev/null || echo 4)"
fast=0
if [[ "${1:-}" == "--fast" ]]; then
  fast=1
fi

echo "==> [1/4] tier-1: configure + build + ctest (build/)"
cmake -B build -S .
cmake --build build -j "${jobs}"
ctest --test-dir build --output-on-failure -j "${jobs}"

echo "==> [2/4] scenario gate: every registered scenario emits schema-valid JSON"
# The driver validates each document against the report schema before
# emitting it; a scenario that fails to run or emits bad JSON fails here.
./build/zombieland run --all --smoke --format=json > /dev/null
./build/zombieland list > /dev/null

echo "==> [3/4] perf gate: micro_hotloop vs the checked-in floor"
# Runs serially so the throughput measurement is not polluted by parallel
# test load.  (Also part of stage 1; this re-run is the authoritative one.)
ctest --test-dir build -L perf_smoke --output-on-failure

if [[ "${fast}" == "1" ]]; then
  echo "==> --fast: skipping sanitizer stage"
  exit 0
fi

echo "==> [4/4] ASan/UBSan: configure + build + ctest (build-asan/)"
# perf_smoke is not registered under ZOMBIE_SANITIZE (instrumentation would
# always trip the floor).
cmake -B build-asan -S . -DZOMBIE_SANITIZE=ON
cmake --build build-asan -j "${jobs}"
ctest --test-dir build-asan --output-on-failure -j "${jobs}"

echo "==> check.sh: all stages passed"
