#!/usr/bin/env bash
# Perf trajectory runner: builds the benches in Release mode, runs the
# micro_hotloop throughput suite, and writes BENCH_hotloop.json at the repo
# root (the number every perf-minded PR is judged against — see BUILDING.md,
# "Benchmarking & profiling").
#
#   scripts/bench.sh            # micro_hotloop + every bench's smoke run
#   scripts/bench.sh --quick    # micro_hotloop only
#
# Uses build-bench/ (Release, -O3) so the default RelWithDebInfo tier-1 tree
# stays untouched.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

jobs="$(nproc 2>/dev/null || echo 4)"
quick=0
if [[ "${1:-}" == "--quick" ]]; then
  quick=1
fi

echo "==> configure + build (build-bench/, Release)"
cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-bench -j "${jobs}" >/dev/null

echo "==> micro_hotloop (full size) -> BENCH_hotloop.json"
./build-bench/micro_hotloop --json="${repo_root}/BENCH_hotloop.json"

echo "==> scenario catalog (smoke) -> BENCH_scenarios.json"
# One aggregate document with every registered scenario's structured report
# (tables + headline metrics + one "points" record per sweep point: axis
# values, per-point metrics, wall-clock); the driver schema-validates each
# entry.  --timings records wall-clock seconds per scenario in the
# document's "timings" object and per point in each report's points
# section, so the artifact doubles as a perf trajectory.  This file is the
# BASELINE of the blocking regression gate: CI (and `scripts/check.sh diff`)
# runs `zombieland diff --fail-on-delta --tolerances=bench/tolerances.json`
# against it on every push, so re-running this script IS the re-baselining
# workflow for intentional metric changes — review the informational diff
# printed below before committing the new baseline.
./build-bench/zombieland run --all --smoke --format=json --timings \
  --out=build-bench/BENCH_scenarios.new.json
if [[ -f "${repo_root}/BENCH_scenarios.json" ]]; then
  echo "==> changes vs the old baseline (informational; review before committing)"
  ./build-bench/zombieland diff "${repo_root}/BENCH_scenarios.json" \
    build-bench/BENCH_scenarios.new.json || true
fi
mv build-bench/BENCH_scenarios.new.json "${repo_root}/BENCH_scenarios.json"

if [[ "${quick}" == "0" ]]; then
  echo "==> bench smoke pass (every paper-figure harness, tiny budgets)"
  ctest --test-dir build-bench -L bench_smoke --output-on-failure -j "${jobs}"
  echo "==> perf gate at Release optimisation"
  ctest --test-dir build-bench -L perf_smoke --output-on-failure
fi

echo "==> bench.sh: done (see BENCH_hotloop.json, BENCH_scenarios.json)"
